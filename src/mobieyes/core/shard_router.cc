#include "mobieyes/core/shard_router.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <map>
#include <tuple>
#include <utility>

#include "mobieyes/core/rebalance.h"
#include "mobieyes/core/shard_transport.h"
#include "mobieyes/net/codec.h"
#include "mobieyes/obs/lifecycle.h"

namespace mobieyes::core {

namespace {

// Checkpoint image framing ("MoCI"), distinct from the store framing
// ("MoCS") and the wire framing ("MoEY") so a buffer can never be mistaken
// for the wrong layer. The image is global and sorted-key — independent of
// the shard count, so any deployment can restore any checkpoint.
constexpr uint32_t kImageMagic = 0x4d6f4349;
constexpr uint16_t kImageVersion = 1;
// Version 2 = version 1 plus the live partition epoch (epoch counter, shard
// count and owner table) right after the next_qid field. Written only when
// the epoch is non-zero, so rebalance-off checkpoints stay byte-identical
// to version 1 — and shard-count-independent, as before.
constexpr uint16_t kImageVersionEpoch = 2;

// Hash-map keys in deterministic order, so two checkpoints of identical
// logical state are byte-identical.
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Modeled payload sizes of the coordinator backplane ops (DESIGN.md §10):
// what a multi-process deployment would put on the wire for each cross-shard
// interaction. Handoffs use their real wire encoding instead.
constexpr size_t kOpEntryRead = net::kQueryInfoBytes;  // fetch a full SQT row
constexpr size_t kOpEntryTouch = 2 * net::kIdBytes;    // qid -> focal/erase
constexpr size_t kOpResultFlip = 2 * net::kIdBytes + 1;
constexpr size_t kOpRqiUpdate = net::kIdBytes + net::kCellRangeBytes;
constexpr size_t kOpReportForward = net::kIdBytes + net::kFocalStateBytes;

}  // namespace

using net::Message;
using net::QueryInfo;

ShardRouter::ShardRouter(const geo::Grid& grid,
                         const net::BaseStationLayout& layout,
                         const net::Bmap& bmap, net::WirelessNetwork& network,
                         MobiEyesOptions options)
    : grid_(&grid),
      layout_(&layout),
      bmap_(&bmap),
      network_(&network),
      options_(options),
      map_(grid, options.sharding) {
  shards_.reserve(static_cast<size_t>(map_.num_shards()));
  for (int k = 0; k < map_.num_shards(); ++k) {
    shards_.push_back(std::make_unique<ServerShard>(k, grid, map_));
  }
  if (options_.sharding.rebalance_enabled()) {
    load_window_.resize(static_cast<size_t>(grid.CellCount()), 0);
  }
}

template <typename Fn>
void ShardRouter::ForEachShard(const char* span_name, const Fn& fn) const {
  const int n = num_shards();
  const bool tracing = trace_ != nullptr && n > 1;
  struct SpanTimes {
    uint64_t start = 0;
    uint64_t dur = 0;
  };
  std::vector<SpanTimes> times;
  if (tracing) times.resize(static_cast<size_t>(n));
  auto body = [&](int64_t k) {
    auto t0 = std::chrono::steady_clock::now();
    if (tracing) {
      // NowMicros only reads the recorder's epoch — safe off-thread; the
      // append happens below, after the join, on the calling thread.
      uint64_t start = trace_->NowMicros();
      fn(static_cast<int>(k));
      times[static_cast<size_t>(k)] = {start, trace_->NowMicros() - start};
    } else {
      fn(static_cast<int>(k));
    }
    // Each shard accumulates into its own Stats, so this is race-free even
    // when the pool runs shards concurrently.
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    shards_[static_cast<size_t>(k)]->stats().step_micros +=
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count());
  };
  if (pool_ != nullptr && n > 1) {
    pool_->ParallelFor(0, n, body);
  } else {
    for (int64_t k = 0; k < n; ++k) body(k);
  }
  if (tracing) {
    for (int k = 0; k < n; ++k) {
      trace_->AddCompleteOnTid(span_name, "sim", times[k].start, times[k].dur,
                               k + 1);
    }
  }
}

void ShardRouter::CountOp(int target_shard, size_t payload_bytes) {
  if (num_shards() == 1 || replaying_ || target_shard == ctx_shard_) return;
  ++backplane_.messages;
  backplane_.bytes += net::kHeaderBytes + payload_bytes;
}

void ShardRouter::EnableHeatmaps(int32_t rows, int32_t cols) {
  heatmaps_.clear();
  heatmaps_.reserve(static_cast<size_t>(num_shards()));
  for (int k = 0; k < num_shards(); ++k) {
    heatmaps_.push_back(std::make_unique<obs::HeatMap>(rows, cols));
  }
}

void ShardRouter::ChargeHeat(obs::HeatMap::Channel channel,
                             const geo::CellCoord& cell, uint64_t n) {
  // Replay suppression mirrors the send/backplane suppression: the
  // pre-crash run already charged this work.
  if (heatmaps_.empty() || replaying_ || n == 0) return;
  heatmaps_[map_.ShardOf(cell)]->Add(channel, cell.i, cell.j, n);
}

bool ShardRouter::UplinkHeatCell(const Message& message,
                                 geo::CellCoord* cell) const {
  // Unlike IngressShard this always resolves the cell itself (never the
  // shard), and it must stay layout-invariant: the same uplink stream
  // charges the same cells whatever the partitioning.
  switch (message.type) {
    case net::MessageType::kQueryInstallRequest: {
      const auto& p = std::get<net::QueryInstallRequest>(message.payload);
      const FotEntry* focal = FindFocal(p.oid);
      if (focal == nullptr) return false;
      *cell = focal->cell;
      return true;
    }
    case net::MessageType::kPositionVelocityReport: {
      const auto& p = std::get<net::PositionVelocityReport>(message.payload);
      *cell = grid_->CellOf(p.state.pos);
      return true;
    }
    case net::MessageType::kVelocityChangeReport: {
      const auto& p = std::get<net::VelocityChangeReport>(message.payload);
      *cell = grid_->CellOf(p.state.pos);
      return true;
    }
    case net::MessageType::kCellChangeReport: {
      const auto& p = std::get<net::CellChangeReport>(message.payload);
      *cell = p.new_cell;
      return true;
    }
    case net::MessageType::kResultBitmapReport: {
      const auto& p = std::get<net::ResultBitmapReport>(message.payload);
      for (QueryId qid : p.qids) {
        const SqtEntry* entry = FindQuery(qid);
        if (entry != nullptr) {
          *cell = entry->curr_cell;
          return true;
        }
      }
      return false;
    }
    case net::MessageType::kLqtReconcileRequest: {
      const auto& p = std::get<net::LqtReconcileRequest>(message.payload);
      *cell = p.cell;
      return true;
    }
    default:
      return false;
  }
}

int ShardRouter::ShardOfQuery(QueryId qid) const {
  auto it = qid_home_.find(qid);
  return it == qid_home_.end() ? -1 : it->second;
}

int ShardRouter::ShardOfFocal(ObjectId oid) const {
  auto it = focal_home_.find(oid);
  return it == focal_home_.end() ? -1 : it->second;
}

SqtEntry* ShardRouter::MutableQuery(QueryId qid) {
  auto it = qid_home_.find(qid);
  return it == qid_home_.end() ? nullptr : shards_[it->second]->FindQuery(qid);
}

FotEntry* ShardRouter::MutableFocal(ObjectId oid) {
  auto it = focal_home_.find(oid);
  return it == focal_home_.end() ? nullptr
                                 : shards_[it->second]->FindFocal(oid);
}

const std::vector<QueryId>& ShardRouter::QueriesForCell(
    const geo::CellCoord& cell) const {
  return shards_[map_.ShardOf(cell)]->QueriesForCell(cell);
}

const std::vector<QueryId>& ShardRouter::RqiRow(
    const geo::CellCoord& cell, std::vector<QueryId>* scratch) {
  const int owner = map_.ShardOf(cell);
  if (transport_ != nullptr && !replaying_ &&
      transport_->AuthorityScan(owner, cell, scratch)) {
    return *scratch;
  }
  return shards_[owner]->QueriesForCell(cell);
}

int ShardRouter::MigrateIfNeeded(ObjectId oid) {
  auto home_it = focal_home_.find(oid);
  if (home_it == focal_home_.end()) return -1;
  int home = home_it->second;
  ServerShard& src = *shards_[home];
  const FotEntry* focal = src.FindFocal(oid);
  if (focal == nullptr) return home;
  int target = map_.ShardOf(focal->cell);
  if (target == home) return home;
  // ExtractFocal below invalidates `focal`.
  const geo::CellCoord handoff_cell = focal->cell;

  // The focal crossed a partition boundary: migrate ownership with an
  // explicit handoff message so the co-location invariant holds. The
  // handoff is delivered in-memory on the coordinator backplane and
  // accounted at its real wire size; it never touches the wireless medium,
  // so clients cannot observe the shard layout.
  Message message = net::MakeMessage(src.ExtractFocal(oid, target));
  if (!replaying_) {
    ++backplane_.messages;
    ++backplane_.handoffs;
    backplane_.bytes += net::WireSizeBytes(message);
    // Layout-dependent by nature (no handoffs with one shard), so the
    // handoffs channel and handoff kind are excluded from deterministic
    // exports.
    ChargeHeat(obs::HeatMap::kHandoffs, handoff_cell, 1);
    if (lifecycle_ != nullptr) {
      lifecycle_->Stamp(obs::LifecycleTracker::kHandoff,
                        static_cast<uint64_t>(oid));
    }
    if (transport_ != nullptr) {
      transport_->OnHandoff(home, target, oid, message);
    }
  }
  auto& handoff = std::get<net::ShardHandoff>(message.payload);
  for (const net::ShardQueryState& q : handoff.queries) {
    qid_home_[q.qid] = target;
  }
  shards_[target]->AdoptFocal(std::move(handoff));
  home_it->second = target;
  if (lifecycle_ != nullptr && !replaying_) {
    // Ownership transferred within the dispatch: a same-step (latency 0)
    // round, recorded so handoff volume shows up in the lifecycle table.
    lifecycle_->ResolveIfPending(obs::LifecycleTracker::kHandoff,
                                 static_cast<uint64_t>(oid));
  }
  return target;
}

void ShardRouter::MaybeRebalance(int64_t step) {
  const ShardingOptions& sharding = options_.sharding;
  if (!sharding.rebalance_enabled() || replaying_) return;
  if (step <= 0 || step % sharding.rebalance_stride != 0) return;
  TimedSection timed(load_timer_);
  map_.AssignmentSnapshot(&owners_scratch_);
  std::vector<CellMove> moves =
      PlanRebalance(owners_scratch_, load_window_, num_shards(),
                    sharding.rebalance_threshold, sharding.rebalance_max_moves);
  // The window restarts at every planning point, moved or not — each plan
  // sees exactly one stride's worth of load.
  std::fill(load_window_.begin(), load_window_.end(), 0);
  if (moves.empty()) return;
  ExecuteRebalance(moves);
}

void ShardRouter::ExecuteRebalance(const std::vector<CellMove>& moves) {
  const int32_t columns = grid_->columns();
  // Pre-move owners, resolved before the epoch advances.
  std::vector<int> old_owner(moves.size());
  std::vector<geo::CellCoord> cells(moves.size());
  for (size_t m = 0; m < moves.size(); ++m) {
    cells[m] = {moves[m].flat % columns, moves[m].flat / columns};
    old_owner[m] = map_.ShardOf(cells[m]);
  }
  const uint64_t new_epoch = map_.epoch() + 1;
  if (!map_.ApplyMoves(new_epoch, moves).ok()) return;
  // Ownership first (mirrors re-home before state migrates), then state.
  if (transport_ != nullptr) {
    transport_->OnPartitionUpdate(new_epoch, moves);
  }

  // RQI rows of the moved cells transfer verbatim — order preserved, since
  // row order drives broadcast order. Accounted like handoffs: a real
  // backplane would put each row on the wire once.
  uint64_t cells_moved = 0;
  for (size_t m = 0; m < moves.size(); ++m) {
    const int to = moves[m].to_shard;
    if (old_owner[m] == to) continue;
    ++cells_moved;
    std::vector<QueryId> row = shards_[old_owner[m]]->TakeRqiRow(cells[m]);
    ++backplane_.messages;
    backplane_.bytes +=
        net::kHeaderBytes + net::kCellBytes + row.size() * net::kIdBytes;
    rebalance_stats_.rqi_ids_moved += row.size();
    if (transport_ != nullptr) {
      transport_->OnRqiRowMove(old_owner[m], to, cells[m], row);
    }
    shards_[to]->SetRqiRow(cells[m], std::move(row));
  }

  // Re-home every focal object whose cell changed owner through the
  // ordinary handoff path (ascending oid, so the handoff sequence — and
  // everything accounted along it — is hash-map-order-independent).
  std::vector<ObjectId> oids;
  oids.reserve(focal_home_.size());
  for (const auto& [oid, home] : focal_home_) oids.push_back(oid);
  std::sort(oids.begin(), oids.end());
  uint64_t focals_moved = 0;
  for (ObjectId oid : oids) {
    const int before = focal_home_.at(oid);
    if (MigrateIfNeeded(oid) != before) ++focals_moved;
  }

  ++rebalance_stats_.events;
  rebalance_stats_.cells_moved += cells_moved;
  rebalance_stats_.focals_moved += focals_moved;
}

void ShardRouter::RqiAddAll(QueryId qid, const geo::CellRange& mon_region) {
  for (int s : map_.ShardsIntersecting(mon_region)) {
    shards_[s]->RqiAdd(qid, mon_region);
    CountOp(s, kOpRqiUpdate);
    if (transport_ != nullptr && !replaying_) {
      transport_->OnRqiOp(/*add=*/true, s, qid, mon_region);
    }
  }
}

void ShardRouter::RqiRemoveAll(QueryId qid, const geo::CellRange& mon_region) {
  for (int s : map_.ShardsIntersecting(mon_region)) {
    shards_[s]->RqiRemove(qid, mon_region);
    CountOp(s, kOpRqiUpdate);
    if (transport_ != nullptr && !replaying_) {
      transport_->OnRqiOp(/*add=*/false, s, qid, mon_region);
    }
  }
}

void ShardRouter::DrainDeferredUplinks() {
  if (deferred_.empty()) return;
  std::vector<std::pair<ObjectId, net::Message>> pending;
  pending.swap(deferred_);
  for (auto& [from, message] : pending) {
    size_t parked = deferred_.size();
    OnUplink(from, message);
    if (deferred_.size() == parked) {
      ++transport_stats_.uplinks_drained;
    } else {
      // Re-deferred (ingress shard still down): keep the original
      // deferral's count, not two.
      --transport_stats_.uplinks_deferred;
    }
  }
}

Result<QueryId> ShardRouter::InstallQuery(ObjectId focal_oid,
                                          const geo::QueryRegion& region,
                                          double filter_threshold,
                                          Seconds duration) {
  TimedSection timed(load_timer_);
  TRACE_SPAN(trace_, "server.install_query");
  if (!region.valid()) {
    return Status::InvalidArgument("query region must have positive extent");
  }
  if (duration <= 0.0) {
    return Status::InvalidArgument("query duration must be positive");
  }

  // Write-ahead for server-side installations: uplink-driven installs are
  // already logged by OnUplink (dispatching_), but an install through this
  // public API would otherwise be invisible to the WAL and vanish on
  // restore. The wire request carries no duration, so a finite-duration
  // query replayed from the WAL loses its expiry — checkpoints taken after
  // the install record the real deadline.
  if (store_ != nullptr && !replaying_ && !dispatching_) {
    store_->Append(focal_oid,
                   net::MakeMessage(net::QueryInstallRequest{
                       focal_oid, region, filter_threshold}));
  }

  // §3.3 step 3: if the focal object is unknown, request its kinematics.
  // Delivery is synchronous, so the PositionVelocityReport round trip
  // completes (and fills the FOT on the cell's shard) before the call below
  // returns. (During WAL replay the round trip is suppressed; Restore
  // pre-applies the logged PositionVelocityReport instead.)
  if (!focal_home_.contains(focal_oid)) {
    SendDownlink(focal_oid,
                 net::MakeMessage(net::PositionVelocityRequest{focal_oid}));
    if (!focal_home_.contains(focal_oid)) {
      return Status::NotFound("focal object did not report its position");
    }
  }
  // Installation executes on the focal's home shard.
  const int home = focal_home_.at(focal_oid);
  ctx_shard_ = home;
  ServerShard& shard = *shards_[home];
  FotEntry& focal = *shard.FindFocal(focal_oid);

  // §3.3 step 4: create the SQT entry and index it in the RQI.
  QueryId qid = next_qid_++;
  SqtEntry entry;
  entry.qid = qid;
  entry.focal_oid = focal_oid;
  entry.region = region;
  entry.filter_threshold = filter_threshold;
  entry.curr_cell = focal.cell;
  entry.mon_region = grid_->MonitoringRegion(entry.curr_cell,
                                             region.ReachX(),
                                             region.ReachY());
  entry.expires_at =
      duration == kNeverExpires ? kNeverExpires : now_ + duration;
  if (options_.lease_duration > 0.0) {
    // Stagger the first renewal by query id so lease refreshes spread over
    // the period instead of bursting on one step.
    entry.lease_renew_at =
        now_ + options_.lease_duration *
                   (1.0 + static_cast<double>(qid % 8) / 8.0);
  }
  RqiAddAll(qid, entry.mon_region);
  focal.queries.push_back(qid);
  auto [it, inserted] = shard.sqt().emplace(qid, std::move(entry));
  (void)inserted;
  qid_home_.emplace(qid, home);
  ChargeHeat(obs::HeatMap::kInstalls, it->second.curr_cell, 1);
  if (lifecycle_ != nullptr && !replaying_) {
    // Install->first-result round, closed when the first target report for
    // this query lands (result-bitmap or reconcile resync path).
    lifecycle_->Stamp(obs::LifecycleTracker::kInstallFirstResult,
                      static_cast<uint64_t>(qid));
  }

  // Tell the focal object it now has a bound query (sets hasMQ), then
  // install the query on every object in the monitoring region through the
  // minimal set of covering base stations.
  SendDownlink(focal_oid,
               net::MakeMessage(net::FocalNotification{focal_oid, qid}));
  net::QueryInstallBroadcast broadcast;
  broadcast.queries.push_back(BuildQueryInfo(shard, it->second));
  BroadcastToRegion(it->second.mon_region,
                    net::MakeMessage(std::move(broadcast)));
  return qid;
}

void ShardRouter::AdvanceTime(Seconds now) {
  TRACE_SPAN(trace_, "server.advance_time");
  now_ = now;
  const size_t n = static_cast<size_t>(num_shards());
  std::vector<std::vector<QueryId>>& per_shard = scan_per_shard_;
  per_shard.resize(n);
  for (auto& part : per_shard) part.clear();
  std::vector<QueryId>& expired = scan_merged_;
  expired.clear();
  {
    TimedSection timed(load_timer_);
    TimedSection step(step_timer_);
    ForEachShard("server.shard.expiry_scan", [&](int k) {
      shards_[k]->CollectExpired(now, &per_shard[k]);
    });
    for (const auto& part : per_shard) {
      expired.insert(expired.end(), part.begin(), part.end());
    }
  }
  // Sorted so removal-broadcast order does not depend on hash-map layout —
  // or on the shard count: a merged multi-shard scan and the monolith's
  // single scan collapse to the same sequence.
  std::sort(expired.begin(), expired.end());
  for (QueryId qid : expired) {
    (void)RemoveQuery(qid);
  }
  if (options_.lease_duration > 0.0) RenewLeases();
}

void ShardRouter::RenewLeases() {
  const size_t n = static_cast<size_t>(num_shards());
  std::vector<std::vector<QueryId>>& per_shard = scan_per_shard_;
  per_shard.resize(n);
  for (auto& part : per_shard) part.clear();
  std::vector<QueryId>& due = scan_merged_;
  due.clear();
  {
    TimedSection timed(load_timer_);
    TimedSection step(step_timer_);
    ForEachShard("server.shard.lease_scan", [&](int k) {
      shards_[k]->CollectLeaseDue(now_, &per_shard[k]);
    });
    for (const auto& part : per_shard) {
      due.insert(due.end(), part.begin(), part.end());
    }
  }
  // Sorted so the broadcast order (and hence any fault-injection draw
  // sequence downstream) is independent of hash-map iteration order.
  std::sort(due.begin(), due.end());
  for (QueryId qid : due) {
    const int home = qid_home_.at(qid);
    ctx_shard_ = home;
    ServerShard& shard = *shards_[home];
    SqtEntry& entry = *shard.FindQuery(qid);
    entry.lease_renew_at = now_ + options_.lease_duration;
    // Re-assert hasMQ on the focal object (a lost FocalNotification would
    // otherwise silence its dead reckoning forever), then refresh the
    // monitoring region. QueryUpdateBroadcast is idempotent on receivers:
    // they install, update or drop based on their own cell.
    SendDownlink(entry.focal_oid,
                 net::MakeMessage(net::FocalNotification{entry.focal_oid,
                                                         qid}));
    net::QueryUpdateBroadcast broadcast;
    broadcast.queries.push_back(BuildQueryInfo(shard, entry));
    BroadcastToRegion(entry.mon_region,
                      net::MakeMessage(std::move(broadcast)));
  }
}

Status ShardRouter::RemoveQuery(QueryId qid) {
  TimedSection timed(load_timer_);
  auto home_it = qid_home_.find(qid);
  if (home_it == qid_home_.end()) return Status::NotFound("unknown query id");
  const int home = home_it->second;
  ctx_shard_ = home;
  ServerShard& shard = *shards_[home];
  auto it = shard.sqt().find(qid);
  if (it == shard.sqt().end()) return Status::NotFound("unknown query id");
  SqtEntry entry = std::move(it->second);
  shard.sqt().erase(it);
  qid_home_.erase(home_it);
  RqiRemoveAll(qid, entry.mon_region);
  if (lifecycle_ != nullptr && !replaying_) {
    // A query removed before any target reported cancels its open
    // install->first-result round (counted, not leaked).
    lifecycle_->Drop(obs::LifecycleTracker::kInstallFirstResult,
                     static_cast<uint64_t>(qid));
  }

  // Co-location: the focal (if still bound) lives on the same shard.
  auto fot_it = shard.fot().find(entry.focal_oid);
  if (fot_it != shard.fot().end()) {
    auto& queries = fot_it->second.queries;
    queries.erase(std::find(queries.begin(), queries.end(), qid));
    if (queries.empty()) {
      // No query bound to this object anymore: clear its hasMQ flag (and
      // drop it from the FOT — nothing left to mediate for it).
      SendDownlink(entry.focal_oid,
                   net::MakeMessage(net::FocalNotification{
                       entry.focal_oid, kInvalidQueryId}));
      shard.fot().erase(fot_it);
      focal_home_.erase(entry.focal_oid);
    }
  }

  net::QueryRemoveBroadcast broadcast;
  broadcast.qids.push_back(qid);
  BroadcastToRegion(entry.mon_region, net::MakeMessage(std::move(broadcast)));
  return Status::OK();
}

int ShardRouter::IngressShard(const Message& message) const {
  if (num_shards() == 1) return 0;
  switch (message.type) {
    case net::MessageType::kQueryInstallRequest: {
      const auto& p = std::get<net::QueryInstallRequest>(message.payload);
      auto it = focal_home_.find(p.oid);
      return it == focal_home_.end() ? 0 : it->second;
    }
    case net::MessageType::kPositionVelocityReport: {
      const auto& p = std::get<net::PositionVelocityReport>(message.payload);
      return map_.ShardOf(grid_->CellOf(p.state.pos));
    }
    case net::MessageType::kVelocityChangeReport: {
      const auto& p = std::get<net::VelocityChangeReport>(message.payload);
      return map_.ShardOf(grid_->CellOf(p.state.pos));
    }
    case net::MessageType::kCellChangeReport: {
      const auto& p = std::get<net::CellChangeReport>(message.payload);
      return map_.ShardOf(p.new_cell);
    }
    case net::MessageType::kResultBitmapReport: {
      const auto& p = std::get<net::ResultBitmapReport>(message.payload);
      for (QueryId qid : p.qids) {
        auto it = qid_home_.find(qid);
        if (it != qid_home_.end()) return it->second;
      }
      return 0;
    }
    case net::MessageType::kLqtReconcileRequest: {
      const auto& p = std::get<net::LqtReconcileRequest>(message.payload);
      return map_.ShardOf(p.cell);
    }
    default:
      return 0;
  }
}

void ShardRouter::OnUplink(ObjectId from, const Message& message) {
  TimedSection timed(load_timer_);
  // Degraded mode (DESIGN.md §13): with a process transport attached and
  // the ingress shard's daemon down, park the uplink instead of mutating
  // state the replica cannot follow. Deferral precedes the WAL append, so
  // a deferred uplink is logged exactly once — when it finally dispatches.
  if (transport_ != nullptr && !replaying_) {
    if (!transport_->ShardAvailable(IngressShard(message))) {
      if (deferred_.size() >= max_deferred_uplinks_) {
        ++transport_stats_.uplinks_dropped;
      } else {
        deferred_.emplace_back(from, message);
        ++transport_stats_.uplinks_deferred;
      }
      return;
    }
  }
  // Write-ahead: log the uplink before any handler mutates state, so the
  // durable store always covers everything the in-memory state reflects.
  // Duplicates are logged too — replay routes them through the same dedup.
  if (store_ != nullptr && !replaying_) store_->Append(from, message);
  const bool outer_dispatch = dispatching_;
  dispatching_ = true;
  ctx_shard_ = IngressShard(message);
  ++shards_[ctx_shard_]->stats().uplinks_routed;
  if ((!heatmaps_.empty() || !load_window_.empty()) && !replaying_) {
    // Charged per arrival (duplicates included — a retransmission is radio
    // and routing work too), at the cell the message itself names. The
    // rebalance load window shares the heat maps' cell resolution, so the
    // planner's input is layout-invariant by the same argument.
    geo::CellCoord cell;
    if (UplinkHeatCell(message, &cell)) {
      ChargeHeat(obs::HeatMap::kUplinks, cell, 1);
      if (!load_window_.empty()) {
        ++load_window_[static_cast<size_t>(grid_->FlatIndex(cell))];
      }
    }
  }
  // A non-zero envelope seq marks a tracked uplink (reliable-uplink
  // hardening): acknowledge it and drop retransmissions of messages already
  // processed.
  if (message.seq != 0 && AckAndDedup(from, message.seq)) {
    dispatching_ = outer_dispatch;
    return;
  }
  switch (message.type) {
    case net::MessageType::kQueryInstallRequest: {
      TRACE_SPAN(trace_, "server.handle_query_install_request");
      HandleQueryInstallRequest(
          std::get<net::QueryInstallRequest>(message.payload));
      break;
    }
    case net::MessageType::kPositionVelocityReport: {
      TRACE_SPAN(trace_, "server.handle_position_velocity_report");
      HandlePositionVelocityReport(
          std::get<net::PositionVelocityReport>(message.payload));
      break;
    }
    case net::MessageType::kVelocityChangeReport: {
      TRACE_SPAN(trace_, "server.handle_velocity_change");
      HandleVelocityChange(
          std::get<net::VelocityChangeReport>(message.payload));
      break;
    }
    case net::MessageType::kCellChangeReport: {
      TRACE_SPAN(trace_, "server.handle_cell_change");
      HandleCellChange(std::get<net::CellChangeReport>(message.payload));
      break;
    }
    case net::MessageType::kResultBitmapReport: {
      TRACE_SPAN(trace_, "server.handle_result_bitmap");
      HandleResultBitmap(std::get<net::ResultBitmapReport>(message.payload));
      break;
    }
    case net::MessageType::kLqtReconcileRequest: {
      TRACE_SPAN(trace_, "server.handle_lqt_reconcile");
      HandleLqtReconcile(
          std::get<net::LqtReconcileRequest>(message.payload));
      break;
    }
    default:
      // Downlink-only types are never valid on the uplink; ignore.
      break;
  }
  dispatching_ = outer_dispatch;
}

bool ShardRouter::AckAndDedup(ObjectId from, uint32_t seq) {
  auto [it, inserted] = seen_seqs_.try_emplace(from);
  if (inserted) {
    seen_order_.insert(
        std::lower_bound(seen_order_.begin(), seen_order_.end(), from), from);
  }
  SeenSeqs& seen = it->second;
  bool duplicate = false;
  for (uint32_t s : seen.ring) {
    if (s == seq) {
      duplicate = true;
      break;
    }
  }
  if (!duplicate) {
    seen.ring[seen.next] = seq;
    seen.next = (seen.next + 1) % seen.ring.size();
  }
  // Always (re-)acknowledge: the previous ack may itself have been lost,
  // and only an ack stops the sender's retransmissions.
  SendDownlink(from, net::MakeMessage(net::UplinkAck{from, seq}));
  return duplicate;
}

void ShardRouter::HandleQueryInstallRequest(
    const net::QueryInstallRequest& request) {
  // A user poses a query from their mobile device; same path as a
  // server-side installation.
  (void)InstallQuery(request.oid, request.region, request.filter_threshold,
                     kNeverExpires);
}

void ShardRouter::HandlePositionVelocityReport(
    const net::PositionVelocityReport& report) {
  auto home_it = focal_home_.find(report.oid);
  if (home_it == focal_home_.end()) {
    // New focal object: home it on its reported cell's shard (the ingress).
    FotEntry entry;
    entry.state = report.state;
    entry.max_speed = report.max_speed;
    entry.cell = grid_->CellOf(report.state.pos);
    const int home = map_.ShardOf(entry.cell);
    shards_[home]->fot().emplace(report.oid, std::move(entry));
    focal_home_.emplace(report.oid, home);
    return;
  }
  const int home = home_it->second;
  if (home != ctx_shard_) CountOp(home, kOpReportForward);
  FotEntry& entry = *shards_[home]->FindFocal(report.oid);
  entry.state = report.state;
  entry.max_speed = report.max_speed;
  entry.cell = grid_->CellOf(report.state.pos);
  (void)MigrateIfNeeded(report.oid);
}

void ShardRouter::HandleVelocityChange(
    const net::VelocityChangeReport& report) {
  auto home_it = focal_home_.find(report.oid);
  if (home_it == focal_home_.end()) return;  // stale report, unbound object
  int home = home_it->second;
  if (home != ctx_shard_) CountOp(home, kOpReportForward);
  FotEntry* focal_ptr = shards_[home]->FindFocal(report.oid);
  // A delayed or retransmitted report can arrive after a newer one; relaying
  // the older vector would roll every monitoring region's prediction back.
  if (report.state.tm < focal_ptr->state.tm) return;
  focal_ptr->state = report.state;
  focal_ptr->cell = grid_->CellOf(report.state.pos);
  home = MigrateIfNeeded(report.oid);
  ServerShard& shard = *shards_[home];
  const FotEntry& focal = *shard.FindFocal(report.oid);

  // §3.4: relay the new vector to the monitoring region of each query bound
  // to this focal object. Groupable queries sharing a monitoring region are
  // served by a single broadcast (§4.1); without grouping each query gets
  // its own broadcast as in the base protocol. Co-location: every bound
  // query's entry is on `shard`.
  const bool lazy = options_.propagation == PropagationMode::kLazy;
  if (options_.enable_query_grouping) {
    std::map<std::tuple<int32_t, int32_t, int32_t, int32_t>,
             std::vector<QueryId>>
        by_region;
    for (QueryId qid : focal.queries) {
      const SqtEntry& entry = shard.sqt().at(qid);
      by_region[{entry.mon_region.i_lo, entry.mon_region.i_hi,
                 entry.mon_region.j_lo, entry.mon_region.j_hi}]
          .push_back(qid);
    }
    for (const auto& [key, qids] : by_region) {
      geo::CellRange region{std::get<0>(key), std::get<1>(key),
                            std::get<2>(key), std::get<3>(key)};
      net::VelocityChangeBroadcast broadcast;
      broadcast.focal_oid = report.oid;
      broadcast.state = report.state;
      if (lazy) {
        broadcast.carries_query_info = true;
        for (QueryId qid : qids) {
          broadcast.queries.push_back(
              BuildQueryInfo(shard, shard.sqt().at(qid)));
        }
      }
      BroadcastToRegion(region, net::MakeMessage(std::move(broadcast)));
    }
  } else {
    for (QueryId qid : focal.queries) {
      const SqtEntry& entry = shard.sqt().at(qid);
      net::VelocityChangeBroadcast broadcast;
      broadcast.focal_oid = report.oid;
      broadcast.state = report.state;
      if (lazy) {
        broadcast.carries_query_info = true;
        broadcast.queries.push_back(BuildQueryInfo(shard, entry));
      }
      BroadcastToRegion(entry.mon_region,
                        net::MakeMessage(std::move(broadcast)));
    }
  }
}

void ShardRouter::HandleCellChange(const net::CellChangeReport& report) {
  // §3.5. For any reporting object under eager propagation, answer with the
  // queries that newly cover its destination cell. The two RQI rows live on
  // the cells' owning shards; the diff preserves the new row's order, like
  // ReverseQueryIndex::NewQueriesForMove.
  if (options_.propagation == PropagationMode::kEager) {
    const int prev_owner = map_.ShardOf(report.prev_cell);
    const std::vector<QueryId>& prev_row =
        RqiRow(report.prev_cell, &scan_row_a_);
    if (prev_owner != ctx_shard_) {
      CountOp(prev_owner,
              net::kCellBytes + prev_row.size() * net::kIdBytes);
    }
    const std::vector<QueryId>& new_row =
        RqiRow(report.new_cell, &scan_row_b_);
    // RQI scan work: both rows are walked to answer this crossing.
    ChargeHeat(obs::HeatMap::kRqiScan, report.prev_cell, prev_row.size());
    ChargeHeat(obs::HeatMap::kRqiScan, report.new_cell, new_row.size());
    // Batched row diff (sorted scratch + binary search) instead of a
    // per-id linear scan of the previous row; output order is still
    // new_row's order.
    std::vector<QueryId>& new_qids = diff_out_;
    ReverseQueryIndex::RowDifferenceInto(new_row, prev_row, &diff_scratch_,
                                         &new_qids);
    // The object never monitors its own queries.
    std::erase_if(new_qids, [&](QueryId qid) {
      const int home = qid_home_.at(qid);
      CountOp(home, kOpEntryTouch);
      return shards_[home]->FindQuery(qid)->focal_oid == report.oid;
    });
    if (!new_qids.empty()) {
      net::NewQueriesNotification notification;
      notification.oid = report.oid;
      for (QueryId qid : new_qids) {
        const int home = qid_home_.at(qid);
        CountOp(home, kOpEntryRead);
        notification.queries.push_back(
            BuildQueryInfo(*shards_[home], *shards_[home]->FindQuery(qid)));
      }
      SendDownlink(report.oid, net::MakeMessage(std::move(notification)));
    }
  }

  // Additional operations when the mover is a focal object: recompute each
  // bound query's monitoring region and notify the union of the old and new
  // regions. The focal (and its queries) first migrate to the new cell's
  // shard — which is the ingress shard — if a partition boundary was
  // crossed.
  auto home_it = focal_home_.find(report.oid);
  if (home_it == focal_home_.end()) return;
  shards_[home_it->second]->FindFocal(report.oid)->cell = report.new_cell;
  const int home = MigrateIfNeeded(report.oid);
  ServerShard& shard = *shards_[home];
  FotEntry& focal = *shard.FindFocal(report.oid);

  // Group queries that share both old and new monitoring regions into one
  // broadcast (matching monitoring regions, §4.1).
  std::map<std::tuple<int32_t, int32_t, int32_t, int32_t, int32_t, int32_t,
                      int32_t, int32_t>,
           std::vector<QueryId>>
      by_region_pair;
  for (QueryId qid : focal.queries) {
    SqtEntry& entry = shard.sqt().at(qid);
    geo::CellRange old_region = entry.mon_region;
    entry.curr_cell = report.new_cell;
    entry.mon_region = grid_->MonitoringRegion(
        report.new_cell, entry.region.ReachX(), entry.region.ReachY());
    RqiRemoveAll(qid, old_region);
    RqiAddAll(qid, entry.mon_region);
    auto key = std::make_tuple(old_region.i_lo, old_region.i_hi,
                               old_region.j_lo, old_region.j_hi,
                               entry.mon_region.i_lo, entry.mon_region.i_hi,
                               entry.mon_region.j_lo, entry.mon_region.j_hi);
    if (options_.enable_query_grouping) {
      by_region_pair[key].push_back(qid);
    } else {
      net::QueryUpdateBroadcast broadcast;
      broadcast.queries.push_back(BuildQueryInfo(shard, entry));
      BroadcastToRegion(geo::CellRange::Union(old_region, entry.mon_region),
                        net::MakeMessage(std::move(broadcast)));
    }
  }
  for (const auto& [key, qids] : by_region_pair) {
    geo::CellRange old_region{std::get<0>(key), std::get<1>(key),
                              std::get<2>(key), std::get<3>(key)};
    geo::CellRange new_region{std::get<4>(key), std::get<5>(key),
                              std::get<6>(key), std::get<7>(key)};
    net::QueryUpdateBroadcast broadcast;
    for (QueryId qid : qids) {
      broadcast.queries.push_back(BuildQueryInfo(shard, shard.sqt().at(qid)));
    }
    BroadcastToRegion(geo::CellRange::Union(old_region, new_region),
                      net::MakeMessage(std::move(broadcast)));
  }
}

void ShardRouter::HandleResultBitmap(const net::ResultBitmapReport& report) {
  for (size_t k = 0; k < report.qids.size(); ++k) {
    auto home_it = qid_home_.find(report.qids[k]);
    if (home_it == qid_home_.end()) continue;
    CountOp(home_it->second, kOpResultFlip);
    SqtEntry* entry = shards_[home_it->second]->FindQuery(report.qids[k]);
    bool is_target = (report.bitmap >> k) & 1;
    if (is_target) {
      entry->result.insert(report.oid);
      if (lifecycle_ != nullptr && !replaying_) {
        lifecycle_->ResolveIfPending(
            obs::LifecycleTracker::kInstallFirstResult,
            static_cast<uint64_t>(report.qids[k]));
      }
    } else {
      entry->result.erase(report.oid);
    }
  }
}

void ShardRouter::HandleLqtReconcile(const net::LqtReconcileRequest& request) {
  if (request.cold_start) {
    // The object restarted and lost its containment state: every result
    // membership it previously reported is now unverifiable. Clear it
    // everywhere (a coordinated sweep over all shards) and let its fresh
    // evaluations re-report the flips — briefly missing beats spuriously
    // present forever.
    for (int s = 0; s < num_shards(); ++s) {
      CountOp(s, net::kIdBytes);
      for (auto& [qid, entry] : shards_[s]->sqt()) {
        entry.result.erase(request.oid);
      }
    }
    // A restarted focal object also lost hasMQ; without this repair it
    // would stop dead-reckoning for its queries until the next lease
    // renewal.
    auto home_it = focal_home_.find(request.oid);
    if (home_it != focal_home_.end()) {
      CountOp(home_it->second, kOpEntryTouch);
      const FotEntry* focal = shards_[home_it->second]->FindFocal(request.oid);
      if (focal != nullptr && !focal->queries.empty()) {
        SendDownlink(request.oid,
                     net::MakeMessage(net::FocalNotification{
                         request.oid, focal->queries.front()}));
      }
    }
  }
  // Queries that should cover the object's current cell per the RQI. The
  // client re-checks filter and cell on install, so over-sending is safe.
  std::vector<QueryId>& expected = reconcile_expected_;
  expected.clear();
  const std::vector<QueryId>& cell_row = RqiRow(request.cell, &scan_row_a_);
  ChargeHeat(obs::HeatMap::kRqiScan, request.cell, cell_row.size());
  for (QueryId qid : cell_row) {
    const int home = qid_home_.at(qid);
    CountOp(home, kOpEntryTouch);
    if (shards_[home]->FindQuery(qid)->focal_oid != request.oid) {
      expected.push_back(qid);
    }
  }
  std::sort(expected.begin(), expected.end());
  std::vector<QueryId>& known = reconcile_known_;
  known.assign(request.known_qids.begin(), request.known_qids.end());
  std::sort(known.begin(), known.end());

  std::vector<QueryId> missing;
  std::set_difference(expected.begin(), expected.end(), known.begin(),
                      known.end(), std::back_inserter(missing));
  std::vector<QueryId> stale;
  std::set_difference(known.begin(), known.end(), expected.begin(),
                      expected.end(), std::back_inserter(stale));

  // Resynchronize result membership from the client's own view: what it
  // holds is the ground truth for its containment bits, and flips reported
  // while it was unreachable are lost for good.
  std::unordered_set<QueryId> targets(request.target_qids.begin(),
                                      request.target_qids.end());
  for (QueryId qid : request.known_qids) {
    SqtEntry* entry = MutableQuery(qid);
    if (entry == nullptr) continue;
    CountOp(qid_home_.at(qid), kOpResultFlip);
    if (targets.contains(qid)) {
      entry->result.insert(request.oid);
      if (lifecycle_ != nullptr && !replaying_) {
        lifecycle_->ResolveIfPending(
            obs::LifecycleTracker::kInstallFirstResult,
            static_cast<uint64_t>(qid));
      }
    } else {
      entry->result.erase(request.oid);
    }
  }
  for (QueryId qid : stale) {
    SqtEntry* entry = MutableQuery(qid);
    if (entry != nullptr) {
      CountOp(qid_home_.at(qid), kOpEntryTouch);
      entry->result.erase(request.oid);
    }
  }

  if (!missing.empty()) {
    net::NewQueriesNotification notification;
    notification.oid = request.oid;
    for (QueryId qid : missing) {
      const int home = qid_home_.at(qid);
      CountOp(home, kOpEntryRead);
      notification.queries.push_back(
          BuildQueryInfo(*shards_[home], *shards_[home]->FindQuery(qid)));
    }
    SendDownlink(request.oid, net::MakeMessage(std::move(notification)));
  }
  if (!stale.empty()) {
    // One-to-one removal: only this object holds the stale entries.
    SendDownlink(request.oid,
                 net::MakeMessage(
                     net::QueryRemoveBroadcast{std::move(stale)}));
  }
}

QueryInfo ShardRouter::BuildQueryInfo(const ServerShard& home,
                                      const SqtEntry& entry) const {
  QueryInfo info;
  info.qid = entry.qid;
  info.focal_oid = entry.focal_oid;
  // Co-location invariant: the focal's FOT row is on the query's shard.
  const FotEntry& focal = home.fot().at(entry.focal_oid);
  info.focal = focal.state;
  info.region = entry.region;
  info.filter_threshold = entry.filter_threshold;
  info.mon_region = entry.mon_region;
  info.focal_max_speed = focal.max_speed;
  return info;
}

void ShardRouter::SendDownlink(ObjectId to, Message message) {
  if (replaying_) return;  // the original delivery happened before the crash
  TimerPause pause(load_timer_);  // delivery is the medium's work, not ours
  network_->SendDownlinkTo(to, std::move(message));
}

void ShardRouter::BroadcastToRegion(const geo::CellRange& region,
                                    Message message) {
  if (replaying_) return;  // see SendDownlink
  std::vector<BaseStationId> cover = bmap_->MinimalCover(region);
  // Computing the cover is server work; the per-station delivery below is
  // the wireless medium's (and the receivers'), so exclude it from the
  // server-load measurement. Per-shard downlinks merge here in a fixed
  // order: the router is the single funnel into the network, so the
  // emission sequence is the dispatch sequence, whatever the shard count.
  TimerPause pause(load_timer_);
  for (BaseStationId sid : cover) {
    network_->Broadcast(layout_->station(sid), message);
  }
}

Result<std::unordered_set<ObjectId>> ShardRouter::QueryResult(
    QueryId qid) const {
  const SqtEntry* entry = FindQuery(qid);
  if (entry == nullptr) return Status::NotFound("unknown query id");
  return entry->result;
}

const SqtEntry* ShardRouter::FindQuery(QueryId qid) const {
  auto it = qid_home_.find(qid);
  return it == qid_home_.end() ? nullptr
                               : shards_[it->second]->FindQuery(qid);
}

const FotEntry* ShardRouter::FindFocal(ObjectId oid) const {
  auto it = focal_home_.find(oid);
  return it == focal_home_.end() ? nullptr
                                 : shards_[it->second]->FindFocal(oid);
}

void ShardRouter::Checkpoint() {
  if (store_ == nullptr) return;
  TimedSection timed(load_timer_);
  TimedSection step(step_timer_);
  store_->Install(EncodeImage());
}

Status ShardRouter::Restore(const Snapshot& store, size_t* replayed) {
  if (store.has_checkpoint()) {
    MOBIEYES_RETURN_NOT_OK(DecodeImage(store.checkpoint));
  }
  // Replay the logged uplinks through the normal dispatch with all sends
  // suppressed: the originals were delivered before the crash, and replay
  // must reproduce state, not traffic.
  replaying_ = true;
  std::vector<bool> consumed(store.wal.size(), false);
  size_t applied = 0;
  for (size_t k = 0; k < store.wal.size(); ++k) {
    if (consumed[k]) continue;
    const WalRecord& record = store.wal[k];
    if (record.message.type == net::MessageType::kQueryInstallRequest) {
      // A live install for an unknown focal object did a synchronous
      // kinematics round trip whose PositionVelocityReport was logged
      // *after* the install (nested dispatch). Replay cannot do the round
      // trip, so apply that report first, in the position the live run
      // effectively applied it.
      const auto& request =
          std::get<net::QueryInstallRequest>(record.message.payload);
      if (!focal_home_.contains(request.oid)) {
        for (size_t j = k + 1; j < store.wal.size(); ++j) {
          const WalRecord& later = store.wal[j];
          if (consumed[j] ||
              later.message.type !=
                  net::MessageType::kPositionVelocityReport ||
              std::get<net::PositionVelocityReport>(later.message.payload)
                      .oid != request.oid) {
            continue;
          }
          OnUplink(later.from, later.message);
          consumed[j] = true;
          ++applied;
          break;
        }
      }
    }
    OnUplink(record.from, record.message);
    ++applied;
  }
  replaying_ = false;
  if (replayed != nullptr) *replayed = applied;
  return Status::OK();
}

std::vector<uint8_t> ShardRouter::EncodeImage() const {
  std::vector<uint8_t> out;
  net::ByteWriter w(&out);
  const uint64_t epoch = map_.epoch();
  w.U32(kImageMagic);
  w.U16(epoch == 0 ? kImageVersion : kImageVersionEpoch);
  w.U16(0);  // reserved
  w.F64(now_);
  w.I64(next_qid_);
  if (epoch > 0) {
    w.U64(epoch);
    w.U32(static_cast<uint32_t>(num_shards()));
    std::vector<int32_t> owners;
    map_.AssignmentSnapshot(&owners);
    EncodeAssignment(owners, &out);
  }

  // Each shard encodes its slice in parallel (sorted within the shard);
  // shard key sets are disjoint, so a serial k-way merge by key emits the
  // same global sorted-key layout the monolith wrote — the image format is
  // shard-count-independent.
  const size_t n = static_cast<size_t>(num_shards());
  std::vector<ServerShard::ImageChunk> fot_chunks(n);
  std::vector<ServerShard::ImageChunk> sqt_chunks(n);
  // The dedup table rides along: shard k serializes the k-th contiguous
  // slice of the (already sorted) key order, so concatenating the parts
  // reproduces the serial ascending-oid encoding byte for byte.
  std::vector<std::vector<uint8_t>> seen_parts(n);
  ForEachShard("server.shard.checkpoint_encode", [&](int k) {
    fot_chunks[k] = shards_[k]->EncodeFotChunk();
    sqt_chunks[k] = shards_[k]->EncodeSqtChunk();
    const size_t lo = seen_order_.size() * static_cast<size_t>(k) / n;
    const size_t hi = seen_order_.size() * (static_cast<size_t>(k) + 1) / n;
    net::ByteWriter part(&seen_parts[k]);
    for (size_t i = lo; i < hi; ++i) {
      const ObjectId oid = seen_order_[i];
      const SeenSeqs& seen = seen_seqs_.at(oid);
      part.I64(oid);
      for (uint32_t seq : seen.ring) part.U32(seq);
      part.U8(static_cast<uint8_t>(seen.next));
    }
  });
  size_t total_bytes = out.size() + 3 * sizeof(uint32_t);
  for (size_t k = 0; k < n; ++k) {
    total_bytes += fot_chunks[k].bytes.size() + sqt_chunks[k].bytes.size() +
                   seen_parts[k].size();
  }
  out.reserve(total_bytes);
  auto merge = [&out,
                &w](const std::vector<ServerShard::ImageChunk>& chunks) {
    size_t total = 0;
    for (const auto& chunk : chunks) total += chunk.keys.size();
    w.U32(static_cast<uint32_t>(total));
    std::vector<size_t> pos(chunks.size(), 0);
    while (true) {
      int best = -1;
      for (size_t s = 0; s < chunks.size(); ++s) {
        if (pos[s] < chunks[s].keys.size() &&
            (best < 0 ||
             chunks[s].keys[pos[s]] < chunks[best].keys[pos[best]])) {
          best = static_cast<int>(s);
        }
      }
      if (best < 0) break;
      const ServerShard::ImageChunk& chunk = chunks[best];
      out.insert(out.end(),
                 chunk.bytes.begin() +
                     static_cast<ptrdiff_t>(chunk.offsets[pos[best]]),
                 chunk.bytes.begin() +
                     static_cast<ptrdiff_t>(chunk.offsets[pos[best] + 1]));
      ++pos[best];
    }
  };
  merge(fot_chunks);
  merge(sqt_chunks);

  w.U32(static_cast<uint32_t>(seen_seqs_.size()));
  for (const std::vector<uint8_t>& part : seen_parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

Status ShardRouter::DecodeImage(const std::vector<uint8_t>& image) {
  net::ByteReader r(image.data(), image.size());
  if (r.U32() != kImageMagic) {
    return Status::InvalidArgument("checkpoint: bad magic number");
  }
  const uint16_t version = r.U16();
  if (version != kImageVersion && version != kImageVersionEpoch) {
    return Status::InvalidArgument("checkpoint: unsupported version");
  }
  r.U16();  // reserved

  for (auto& shard : shards_) shard->Clear();
  focal_home_.clear();
  qid_home_.clear();
  seen_seqs_.clear();
  seen_order_.clear();

  now_ = r.F64();
  next_qid_ = r.I64();

  // Partition epoch first: the entries below re-home through map_.ShardOf,
  // which must already answer under the restored assignment.
  if (version == kImageVersionEpoch) {
    const uint64_t epoch = r.U64();
    const uint32_t stored_shards = r.U32();
    if (!r.ok() || epoch == 0 || stored_shards == 0) {
      return Status::InvalidArgument("checkpoint: malformed epoch header");
    }
    std::vector<int32_t> owners;
    size_t consumed = 0;
    const size_t off = image.size() - r.remaining();
    MOBIEYES_RETURN_NOT_OK(DecodeAssignment(
        image.data() + off, r.remaining(), static_cast<int>(stored_shards),
        &owners, &consumed));
    r.Skip(consumed);
    if (static_cast<int>(stored_shards) == num_shards() &&
        owners.size() == static_cast<size_t>(map_.cell_count())) {
      MOBIEYES_RETURN_NOT_OK(map_.SetAssignment(epoch, owners));
    } else {
      // N→M restore: the stored owner table indexes shards (or a grid)
      // this deployment does not have. Fall back to this deployment's seed
      // under the restored epoch counter, so entries re-home consistently
      // and later rebalances keep advancing the epoch.
      MOBIEYES_RETURN_NOT_OK(map_.SetAssignment(epoch, {}));
    }
  } else {
    // A version-1 image was written at epoch 0; reset any live assignment
    // so the restore lands exactly where the writer was.
    MOBIEYES_RETURN_NOT_OK(map_.SetAssignment(0, {}));
  }

  // Entries are homed by the *current* shard map, so a checkpoint written
  // by an N-shard deployment restores cleanly into an M-shard one.
  uint32_t fot_count = r.U32();
  for (uint32_t k = 0; k < fot_count && r.ok(); ++k) {
    ObjectId oid = r.I64();
    FotEntry entry;
    entry.state = r.State();
    entry.max_speed = r.F64();
    entry.cell = r.Cell();
    uint32_t num_queries = r.U32();
    for (uint32_t q = 0; q < num_queries && r.ok(); ++q) {
      entry.queries.push_back(r.I64());
    }
    if (r.ok()) {
      const int home = map_.ShardOf(entry.cell);
      shards_[home]->fot().emplace(oid, std::move(entry));
      focal_home_.emplace(oid, home);
    }
  }

  uint32_t sqt_count = r.U32();
  for (uint32_t k = 0; k < sqt_count && r.ok(); ++k) {
    SqtEntry entry;
    entry.qid = r.I64();
    entry.focal_oid = r.I64();
    entry.region = r.Region();
    entry.filter_threshold = r.F64();
    entry.curr_cell = r.Cell();
    entry.mon_region = r.Range();
    entry.expires_at = r.F64();
    entry.lease_renew_at = r.F64();
    uint32_t result_count = r.U32();
    for (uint32_t q = 0; q < result_count && r.ok(); ++q) {
      entry.result.insert(r.I64());
    }
    if (!r.ok()) break;
    // The monitoring region indexes straight into the RQI matrix; a corrupt
    // range would walk out of bounds, so reject it before Add.
    if (entry.mon_region.i_lo > entry.mon_region.i_hi ||
        entry.mon_region.j_lo > entry.mon_region.j_hi ||
        !grid_->IsValid({entry.mon_region.i_lo, entry.mon_region.j_lo}) ||
        !grid_->IsValid({entry.mon_region.i_hi, entry.mon_region.j_hi})) {
      return Status::InvalidArgument(
          "checkpoint: monitoring region outside the grid");
    }
    // Queries home with their focal object (co-location invariant); an
    // orphan entry falls back to its current cell's shard.
    auto focal_it = focal_home_.find(entry.focal_oid);
    const int home = focal_it != focal_home_.end()
                         ? focal_it->second
                         : map_.ShardOf(entry.curr_cell);
    // RQI rows rebuild in image (sorted-qid) order on the owning shards —
    // the same per-row order the monolith's restore produced.
    for (int s : map_.ShardsIntersecting(entry.mon_region)) {
      shards_[s]->RqiAdd(entry.qid, entry.mon_region);
    }
    qid_home_.emplace(entry.qid, home);
    shards_[home]->sqt().emplace(entry.qid, std::move(entry));
  }

  uint32_t seen_count = r.U32();
  for (uint32_t k = 0; k < seen_count && r.ok(); ++k) {
    ObjectId oid = r.I64();
    SeenSeqs seen;
    for (size_t s = 0; s < seen.ring.size(); ++s) seen.ring[s] = r.U32();
    uint8_t next = r.U8();
    if (next >= seen.ring.size()) {
      return Status::InvalidArgument("checkpoint: dedup ring cursor range");
    }
    seen.next = next;
    // The image stores the table in ascending-oid order, so appending keeps
    // seen_order_ sorted.
    if (r.ok() && seen_seqs_.emplace(oid, seen).second) {
      seen_order_.push_back(oid);
    }
  }

  if (!r.ok() || r.remaining() != 0) {
    return Status::InvalidArgument("checkpoint: truncated or malformed image");
  }
  return Status::OK();
}

}  // namespace mobieyes::core
