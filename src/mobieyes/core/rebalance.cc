#include "mobieyes/core/rebalance.h"

#include <algorithm>
#include <cstdio>

namespace mobieyes::core {

Status ParseRebalanceSpec(const std::string& spec,
                          ShardingOptions* sharding) {
  if (spec.empty() || spec == "off") {
    sharding->rebalance_stride = 0;
    return Status::OK();
  }
  int stride = 0;
  double threshold = 0.0;
  int max_moves = 0;
  char trailing = '\0';
  if (std::sscanf(spec.c_str(), "%d:%lf:%d%c", &stride, &threshold,
                  &max_moves, &trailing) != 3 ||
      stride < 1 || threshold <= 1.0 || max_moves < 1) {
    return Status::InvalidArgument(
        "rebalance spec: want off or STRIDE:THRESHOLD:MAX_MOVES with "
        "STRIDE >= 1, THRESHOLD > 1.0, MAX_MOVES >= 1");
  }
  sharding->rebalance_stride = stride;
  sharding->rebalance_threshold = threshold;
  sharding->rebalance_max_moves = max_moves;
  return Status::OK();
}

std::vector<CellMove> PlanRebalance(const std::vector<int32_t>& owners,
                                    const std::vector<uint64_t>& load,
                                    int num_shards, double threshold,
                                    int max_moves) {
  std::vector<CellMove> moves;
  if (num_shards <= 1 || max_moves <= 0 || owners.empty() ||
      load.size() != owners.size()) {
    return moves;
  }

  std::vector<uint64_t> shard_load(static_cast<size_t>(num_shards), 0);
  uint64_t total = 0;
  for (size_t f = 0; f < owners.size(); ++f) {
    shard_load[static_cast<size_t>(owners[f])] += load[f];
    total += load[f];
  }
  if (total == 0) return moves;
  const double mean = static_cast<double>(total) / num_shards;

  // Working copy of the assignment so later iterations see earlier moves.
  std::vector<int32_t> owner = owners;
  std::vector<bool> moved(owners.size(), false);

  while (static_cast<int>(moves.size()) < max_moves) {
    int hot = 0;
    int cold = 0;
    for (int s = 1; s < num_shards; ++s) {
      if (shard_load[static_cast<size_t>(s)] >
          shard_load[static_cast<size_t>(hot)]) {
        hot = s;
      }
      if (shard_load[static_cast<size_t>(s)] <
          shard_load[static_cast<size_t>(cold)]) {
        cold = s;
      }
    }
    if (static_cast<double>(shard_load[static_cast<size_t>(hot)]) <=
        threshold * mean) {
      break;  // balanced enough
    }

    // Hottest not-yet-moved loaded cell of the hot shard (ties: lowest
    // flat index, so the pick is order-independent).
    int64_t pick = -1;
    uint64_t pick_load = 0;
    for (size_t f = 0; f < owner.size(); ++f) {
      if (owner[f] != hot || moved[f] || load[f] == 0) continue;
      if (load[f] > pick_load) {
        pick = static_cast<int64_t>(f);
        pick_load = load[f];
      }
    }
    if (pick < 0) break;  // hot shard's load is not attributable to cells

    // Only move when it strictly narrows the hot/cold gap; otherwise the
    // plan would oscillate cell-sized load back and forth.
    if (shard_load[static_cast<size_t>(cold)] + pick_load >=
        shard_load[static_cast<size_t>(hot)]) {
      break;
    }

    shard_load[static_cast<size_t>(hot)] -= pick_load;
    shard_load[static_cast<size_t>(cold)] += pick_load;
    owner[static_cast<size_t>(pick)] = cold;
    moved[static_cast<size_t>(pick)] = true;
    moves.push_back(CellMove{static_cast<int32_t>(pick), cold});
  }

  std::sort(moves.begin(), moves.end(),
            [](const CellMove& a, const CellMove& b) {
              return a.flat < b.flat;
            });
  return moves;
}

}  // namespace mobieyes::core
