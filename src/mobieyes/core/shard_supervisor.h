#ifndef MOBIEYES_CORE_SHARD_SUPERVISOR_H_
#define MOBIEYES_CORE_SHARD_SUPERVISOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/common/status.h"
#include "mobieyes/core/shard_daemon.h"
#include "mobieyes/core/shard_router.h"
#include "mobieyes/core/shard_transport.h"
#include "mobieyes/net/backplane.h"
#include "mobieyes/net/framing.h"

namespace mobieyes::obs {
class LifecycleTracker;
}  // namespace mobieyes::obs

namespace mobieyes::core {

struct SupervisorOptions {
  // Daemon binary. Empty: $MOBIEYES_SHARDD, then mobieyes_shardd next to
  // the running binary or in a sibling tools/ directory.
  std::string shardd_path;
  // Listen address ("uds:..." / "tcp:..."). Empty: a fresh UDS socket
  // under a private temp directory, removed at shutdown.
  std::string address;
  // Steps between liveness probes on an otherwise idle link.
  int heartbeat_stride = 4;
  // Virtual-step RPC deadline: a frame unacked this many steps after it
  // was sent marks the daemon dead (killed and rescheduled).
  int timeout_steps = 4;
  // Respawn backoff for a dead daemon, in steps: base doubles per
  // consecutive failure up to max, plus seeded jitter in [0, base).
  int respawn_base_steps = 1;
  int respawn_max_steps = 16;
  // Bounded per-peer send queue; a frame that would exceed this is dropped
  // and the peer declared dead (it is not consuming).
  size_t max_queue_bytes = 4u << 20;
  // Step-batch frames buffered per peer for rejoin replay; past this the
  // log is discarded and a rejoin takes a fresh full sync instead.
  size_t max_replay_frames = 256;
  // Degraded-mode depth: uplinks queued for a dead ingress shard
  // (installed on the router via set_max_deferred_uplinks).
  size_t max_deferred_uplinks = 4096;
  // Wall-clock budget for Start()'s initial spawn-and-handshake.
  int start_timeout_ms = 15000;
  // Authority mode (DESIGN.md §14): daemons execute the RQI row reads and
  // the router merges their digest-verified results; the local shard
  // objects become the warm failover mirror instead of the serving copy.
  bool authority = false;
  // Wall-clock deadline for one blocking authority scan; past it the
  // daemon is declared dead and the scan fails over to the local mirror
  // within the same step.
  int authority_timeout_ms = 250;
  // Seeded backplane chaos applied to every outbound frame after startup,
  // plus scheduled SIGKILLs fired at step boundaries.
  net::BackplaneFaultPlan fault;
  uint64_t seed = 1;
  bool verbose = false;
};

struct SupervisorStats {
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t batches_sent = 0;
  uint64_t heartbeats_sent = 0;
  uint64_t syncs_sent = 0;
  uint64_t acks_received = 0;
  uint64_t rpc_timeouts = 0;
  uint64_t digest_mismatches = 0;
  uint64_t restarts = 0;         // respawns after a detected death
  uint64_t replayed_frames = 0;  // logged frames re-sent on rejoin
  uint64_t send_drops = 0;       // frames refused by a full send queue
  // Wall round-trip of resolved RPCs (frame send -> ack read).
  uint64_t rtt_micros_total = 0;
  uint64_t rtt_samples = 0;
  // Authority mode: scans answered by a daemon vs served by the local
  // mirror (daemon down, resyncing, or failed mid-scan).
  uint64_t scans_remote = 0;
  uint64_t scans_local = 0;
  // Authority revoked mid-step (death, digest divergence) / granted back
  // at a step boundary. The initial grants count as cutovers too.
  uint64_t failovers = 0;
  uint64_t cutovers = 0;
  // Chaos layer: frame faults injected (drop/delay/truncate/flip) and
  // scheduled SIGKILLs fired.
  uint64_t chaos_frames = 0;
  uint64_t chaos_kills = 0;
  // Wall round-trip of remote-answered scans (request send -> result read).
  uint64_t scan_rtt_micros_total = 0;
  uint64_t scan_rtt_samples = 0;
};

// Runs one daemon process per shard and keeps each a faithful replica of
// the router's shard state (DESIGN.md §13). The router stays the single
// serial dispatcher — the supervisor mirrors its shard ops over the
// backplane as one coalesced frame per peer per step, verifies replica
// agreement via digest-carrying acks, detects death by socket EOF, RPC
// deadline or heartbeat miss, and restarts dead daemons from the stored
// sync image (checkpoint chunks) plus the buffered frame log. While a
// daemon is down the router defers that shard's uplinks (degraded mode).
//
// With options.authority set (DESIGN.md §14) the daemons additionally
// execute the RQI row reads: the router's shard objects become a warm
// standby mirror, scans go to the daemons as blocking digest-verified
// RPCs, and a dead or diverged daemon fails over to the mirror within the
// same virtual step — no step blocks, no uplink is deferred. The seeded
// fault plan in options.fault layers deterministic chaos (frame drops,
// delays, truncations, bit flips, scheduled SIGKILLs) over the backplane.
class ShardSupervisor : public ShardTransport {
 public:
  explicit ShardSupervisor(const SupervisorOptions& options);
  ~ShardSupervisor() override;

  // Points the supervisor at the authoritative router and registers itself
  // as the router's transport. Call before Start, and again after a server
  // restore rebuilds the router (followed by OnServerRestored).
  void AttachRouter(ShardRouter* router);

  // Listens, spawns every daemon and completes the config+sync handshake.
  Status Start();

  // One scheduler turn, called once per simulation step after all uplinks
  // dispatched: flushes the coalesced batch (or a heartbeat) to every
  // peer, reads acks, enforces RPC deadlines, respawns due daemons and
  // completes rejoin handshakes.
  void PumpStep(int64_t step);

  // SIGKILLs shard's daemon (crash_sweep's kill -9 fault event). The shard
  // is immediately degraded; the normal respawn path revives it.
  void KillShard(int shard);

  // Re-captures the sync image of every shard and forces a full resync of
  // every peer — the authoritative state was replaced (server restore).
  void OnServerRestored();

  // Captures fresh sync images (checkpoint boundary). Call right after
  // PumpStep, when no ops are pending.
  void CaptureSyncAll();

  // Waits (wall-bounded) until every peer is up with no outstanding RPCs
  // and empty send queues. Test/shutdown aid.
  Status Quiesce(int timeout_ms);

  // Clean stop: kShutdown to every live daemon, reap children, close and
  // remove the socket. Idempotent; also run by the destructor.
  void Shutdown();

  // --- ShardTransport ------------------------------------------------------
  bool ShardAvailable(int shard) const override;
  void OnRqiOp(bool add, int shard, QueryId qid,
               const geo::CellRange& mon_region) override;
  void OnHandoff(int from_shard, int to_shard, ObjectId oid,
                 const net::Message& message) override;
  // Rebalance mirroring (DESIGN.md §15): the partition update is coalesced
  // into EVERY peer's next batch (each replica re-homes its map before the
  // row moves below land), and each moved RQI row becomes a clear op on the
  // old owner plus a set op on the new one. Epoch numbers ride the acks, so
  // a replica that missed an update is caught by the epoch check exactly
  // like a digest divergence and resynced.
  void OnPartitionUpdate(uint64_t epoch,
                         const std::vector<CellMove>& moves) override;
  void OnRqiRowMove(int from_shard, int to_shard, const geo::CellCoord& cell,
                    const std::vector<QueryId>& row) override;
  // Authority-mode scan: flushes the shard's coalesced ops (so the daemon
  // observes every mutation this dispatch already applied), then blocks on
  // a kScanRequest. The result is accepted only with the daemon's state
  // digest matching the local mirror's; on death, deadline or divergence
  // the scan fails over to the mirror within the same step (returns
  // false). See DESIGN.md §14.
  bool AuthorityScan(int shard, const geo::CellCoord& cell,
                     std::vector<QueryId>* out) override;

  // --- Introspection -------------------------------------------------------
  int num_peers() const { return static_cast<int>(peers_.size()); }
  bool AllAvailable() const;
  int64_t down_shards() const;
  size_t queue_bytes(int shard) const;
  const SupervisorStats& stats() const { return stats_; }
  const std::string& address() const { return backplane_.bound_address(); }
  void set_lifecycle(obs::LifecycleTracker* lifecycle) {
    lifecycle_ = lifecycle;
  }

  // Resolves the daemon binary path (options override, $MOBIEYES_SHARDD,
  // then siblings of the running executable). Empty when none is found.
  static std::string FindShardd(const std::string& override_path);

  // Backoff before respawn attempt `attempts` (1-based), in steps: base
  // doubles per consecutive failure, seeded jitter in [0, base] is added,
  // and the result is clamped to [base, max(base, max_steps)]. Exposed for
  // the bounds test.
  static int64_t RespawnBackoffSteps(int attempts, int base_steps,
                                     int max_steps, Rng* rng);

 private:
  struct PendingRpc {
    int64_t step = 0;
    uint64_t expected_digest = 0;
    // Partition epoch the replica must sit at after applying the frame; a
    // mismatching epoch in the ack forces a resync like a digest mismatch.
    uint64_t expected_epoch = 0;
    bool is_sync = false;
    bool is_heartbeat = false;
    bool is_scan = false;
    int64_t sent_micros = 0;  // steady-clock stamp for RTT
  };

  // A chaos-delayed frame's wire bytes, released at a later step. Frames
  // queued behind a held one are held too, preserving send order.
  struct HeldFrame {
    std::vector<uint8_t> wire;
    int64_t release_step = 0;
  };

  // A step batch kept for rejoin replay, with the authoritative digest the
  // replica must land on after applying it.
  struct LoggedFrame {
    net::Frame frame;
    uint64_t digest = 0;
    uint64_t epoch = 0;  // partition epoch after this frame applies
  };

  struct Peer {
    int shard = 0;
    pid_t pid = -1;
    std::unique_ptr<net::PeerLink> link;
    bool up = false;         // handshake complete, replica current
    bool need_sync = false;  // full resync owed (mismatch, restore)
    // Authority mode: this daemon currently executes the shard's scans.
    // Granted only at a step boundary (clean cutover), revoked on death or
    // digest divergence (failover to the local mirror).
    bool authoritative = false;
    StepBatchBuilder pending;
    std::deque<PendingRpc> rpcs;
    std::deque<HeldFrame> held;  // chaos-delayed outbound frames
    // Rejoin material: last captured sync image + batches sent since.
    std::vector<uint8_t> sync_image;
    uint64_t sync_digest = 0;
    // Partition epoch (and, past epoch 0, the explicit assignment) at
    // capture time. The rejoin config carries THIS epoch, not the live one:
    // the frame log holds every partition update since capture, so replay
    // walks a rejoining daemon forward to the live epoch the same way it
    // walks its RQI state forward.
    uint64_t sync_epoch = 0;
    std::vector<int32_t> sync_assignment;
    std::deque<LoggedFrame> frame_log;
    bool log_overflow = false;
    int64_t last_activity_step = 0;  // last frame sent
    int64_t next_respawn_step = 0;
    int respawn_attempts = 0;
    // Lazily computed digest of the local mirror, invalidated by every
    // replicated op. StateDigest() walks the whole shard, and authority
    // mode needs the digest per scan, not just per step.
    uint64_t mirror_digest = 0;
    bool mirror_digest_valid = false;
  };

  Status SpawnDaemon(Peer* peer);
  void MarkDown(Peer* peer, const char* reason);
  void CaptureSync(Peer* peer);
  void SendSync(Peer* peer);
  void SendBatchOrHeartbeat(Peer* peer);
  void LogFrame(Peer* peer, const net::Frame& frame);
  void AcceptNewConnections();
  void ReceiveAll();
  void HandlePeerFrame(Peer* peer, const net::Frame& frame);
  void RespawnDue();
  uint64_t RpcKey(const Peer& peer, const PendingRpc& rpc) const;
  // Chaos-aware send: encodes the frame, rolls the fault plan against it
  // (drop / delay / truncate / flip), and queues whatever survives on the
  // link. Returns false only when the link refused the bytes — an injected
  // fault still reports success, so loss is detected by the RPC deadline,
  // exactly like a real flaky transport.
  bool SendFrame(Peer* peer, const net::Frame& frame);
  // Flushes chaos-held frames whose release step arrived (all of them when
  // `force`, for shutdown paths that no longer advance steps).
  void ReleaseDelayed(Peer* peer, bool force);
  // Revokes scan authority mid-step (counts a failover).
  void RevokeAuthority(Peer* peer);
  // Grants authority to synced idle peers (counts cutovers). Step-boundary
  // only, so a rejoining daemon never serves a partially-shipped step.
  void GrantAuthority();
  // Flushes the peer's coalesced ops as a mid-step batch. False when the
  // send failed (peer marked down inside).
  bool FlushPendingBatch(Peer* peer);
  // The local mirror's state digest, cached until the next replicated op.
  uint64_t MirrorDigest(Peer* peer);
  static int64_t NowMicros();

  SupervisorOptions options_;
  ShardRouter* router_ = nullptr;
  net::Backplane backplane_;
  std::vector<std::unique_ptr<Peer>> peers_;
  // Accepted links that have not said hello yet.
  std::vector<std::unique_ptr<net::PeerLink>> pending_links_;
  Rng rng_;
  Rng chaos_rng_{1};  // reseeded from the fault plan in the constructor
  int64_t step_ = 0;
  std::string socket_dir_;  // private temp dir to remove at shutdown
  SupervisorStats stats_;
  obs::LifecycleTracker* lifecycle_ = nullptr;
  bool started_ = false;
  // Set inside Quiesce: chaos injection pauses and recovery switches to
  // wall-clock pacing (virtual steps no longer advance there).
  bool quiescing_ = false;
};

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_SHARD_SUPERVISOR_H_
