#ifndef MOBIEYES_CORE_RQI_H_
#define MOBIEYES_CORE_RQI_H_

#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/geo/grid.h"

namespace mobieyes::core {

// Reverse Query Index (paper §3.2): an M x N matrix whose cell (i, j) holds
// the identifiers of the queries whose monitoring region intersects grid
// cell A_{i,j}. RQI(cell) equals nearby_queries(o) for every object o whose
// current grid cell is that cell.
class ReverseQueryIndex {
 public:
  explicit ReverseQueryIndex(const geo::Grid& grid)
      : grid_(&grid), cells_(grid.CellCount()) {}

  // Registers qid over every cell of its monitoring region.
  void Add(QueryId qid, const geo::CellRange& mon_region);

  // Unregisters qid from every cell of `mon_region` (must be the same range
  // that was passed to Add).
  void Remove(QueryId qid, const geo::CellRange& mon_region);

  // Single-cell registration, for sharded RQI slices that index only the
  // cells their shard owns. Appending per cell keeps each row's order
  // identical to what full-range Add calls would produce.
  void AddCell(QueryId qid, const geo::CellCoord& c) {
    cells_[grid_->FlatIndex(c)].push_back(qid);
  }
  void RemoveCell(QueryId qid, const geo::CellCoord& c);

  // Whole-row transfer for shard rebalancing: rows move between slices
  // verbatim when their cell changes owner, preserving element order.
  std::vector<QueryId> TakeRow(const geo::CellCoord& c) {
    std::vector<QueryId> row = std::move(cells_[grid_->FlatIndex(c)]);
    cells_[grid_->FlatIndex(c)].clear();
    return row;
  }
  void SetRow(const geo::CellCoord& c, std::vector<QueryId> row) {
    cells_[grid_->FlatIndex(c)] = std::move(row);
  }

  // Queries whose monitoring region covers cell c (unordered).
  const std::vector<QueryId>& QueriesForCell(const geo::CellCoord& c) const {
    return cells_[grid_->FlatIndex(c)];
  }

  // Queries covering `new_cell` but not `prev_cell`: what an object needs
  // to newly install after a cell crossing (§3.5).
  std::vector<QueryId> NewQueriesForMove(const geo::CellCoord& prev_cell,
                                         const geo::CellCoord& new_cell) const;

  // Batched row difference: appends to *out the ids of `new_row` absent
  // from `prev_row`, preserving new_row's order (the order RQI rows and
  // their derived broadcasts are built in). *scratch receives a sorted copy
  // of prev_row so each membership test is a binary search instead of the
  // linear scan of the per-id diff; both out-params are caller-owned
  // scratch, reusable across calls.
  static void RowDifferenceInto(const std::vector<QueryId>& new_row,
                                const std::vector<QueryId>& prev_row,
                                std::vector<QueryId>* scratch,
                                std::vector<QueryId>* out);

 private:
  const geo::Grid* grid_;
  std::vector<std::vector<QueryId>> cells_;
};

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_RQI_H_
