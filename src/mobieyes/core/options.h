#ifndef MOBIEYES_CORE_OPTIONS_H_
#define MOBIEYES_CORE_OPTIONS_H_

#include "mobieyes/common/units.h"

namespace mobieyes::core {

// How queries reach objects that changed their grid cell (paper §3.5).
enum class PropagationMode {
  // Eager: every object reports cell crossings; the server answers with the
  // queries newly covering the object's cell.
  kEager,
  // Lazy: non-focal objects stay silent on cell crossings and pick up
  // nearby queries from expanded velocity-change / query-update broadcasts.
  kLazy,
};

// How grid cells map onto server shards (DESIGN.md §10).
enum class ShardPartition {
  // Contiguous bands of grid rows: shard k owns rows [k*band, (k+1)*band).
  // Preserves locality (a monitoring region touches few shards).
  kRowBand,
  // CellCoordHash(cell) % num_shards: spreads hot rows at the cost of
  // scattering every monitoring region across all shards.
  kHash,
};

// Server-side sharding (DESIGN.md §10). num_shards == 1 is the monolith:
// one shard owning the whole grid, no inter-shard traffic.
struct ShardingOptions {
  int num_shards = 1;
  ShardPartition partition = ShardPartition::kRowBand;

  // Online rebalancing (DESIGN.md §15): every rebalance_stride steps the
  // router reads the step-synchronous per-cell load window and, when the
  // hottest shard's load exceeds rebalance_threshold times the mean, moves
  // up to rebalance_max_moves cells to colder shards, advancing the
  // partition epoch. 0 (the default) disables rebalancing — the partition
  // stays frozen at its epoch-0 seed and every code path is byte-identical
  // to the pre-rebalancing build.
  int rebalance_stride = 0;
  double rebalance_threshold = 1.2;
  int rebalance_max_moves = 8;

  bool rebalance_enabled() const {
    return rebalance_stride > 0 && num_shards > 1;
  }
};

// Toggles for the protocol variant run by both server and clients. Server
// and clients of one deployment must share the same options.
struct MobiEyesOptions {
  PropagationMode propagation = PropagationMode::kEager;

  // Safe-period optimization (§4.2): objects skip evaluating queries whose
  // spatial region provably cannot reach them yet.
  bool enable_safe_period = false;

  // Query grouping (§4.1): groupable queries share broadcasts and result
  // reports carry per-group bitmaps.
  bool enable_query_grouping = true;

  // Dead-reckoning threshold Δ (miles): a focal object relays its velocity
  // vector when its true position drifts more than Δ from where the last
  // relayed vector predicts it to be (§3.4).
  Miles dead_reckoning_threshold = 0.2;

  // --- Protocol hardening (DESIGN.md §8) ------------------------------------
  // Defenses against lossy links (net::FaultyNetwork). All off by default:
  // the base protocol then matches the paper exactly and pays nothing for
  // the hooks.

  // Correctness-critical uplinks (velocity/cell-change/result reports) carry
  // a sequence number, are acknowledged by the server, and are retransmitted
  // with exponential backoff until acked or the retry budget is spent.
  // Retransmissions regenerate their payload from current client state, so
  // a late retry never reintroduces stale data.
  bool enable_reliable_uplink = false;
  int uplink_max_retries = 4;
  // Ticks before the first retransmit; doubles after each retry.
  int uplink_retry_backoff_ticks = 1;

  // Soft-state leases: the server periodically re-broadcasts each query's
  // monitoring-region state (QueryUpdateBroadcast + FocalNotification) every
  // lease_duration seconds, recovering clients that missed the original
  // install or update; clients drop LQT entries not refreshed within twice
  // the lease. 0 disables leases.
  Seconds lease_duration = 0.0;

  // Periodic reconciliation: every reconcile_period_ticks (staggered by
  // object id) a client uplinks its LQT contents and result membership; the
  // server diffs them against the RQI and repairs both sides. This is what
  // lets an object reconnecting after a disconnect rebuild its LQT.
  // 0 disables reconciliation.
  int reconcile_period_ticks = 0;

  // Grid partitioning of the server state across shards (DESIGN.md §10).
  // Clients never see the shard layout; the wire protocol is unchanged.
  ShardingOptions sharding;
};

// Canonical hardened configuration used by the fault-tolerance evaluation:
// reliable uplinks, leases spanning `lease_ticks` time steps of `time_step`
// seconds, and reconciliation at half the lease period.
inline MobiEyesOptions HardenedOptions(MobiEyesOptions base, Seconds time_step,
                                       int lease_ticks = 16) {
  base.enable_reliable_uplink = true;
  base.lease_duration = lease_ticks * time_step;
  base.reconcile_period_ticks = lease_ticks / 2 > 0 ? lease_ticks / 2 : 1;
  return base;
}

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_OPTIONS_H_
