#ifndef MOBIEYES_CORE_OPTIONS_H_
#define MOBIEYES_CORE_OPTIONS_H_

#include "mobieyes/common/units.h"

namespace mobieyes::core {

// How queries reach objects that changed their grid cell (paper §3.5).
enum class PropagationMode {
  // Eager: every object reports cell crossings; the server answers with the
  // queries newly covering the object's cell.
  kEager,
  // Lazy: non-focal objects stay silent on cell crossings and pick up
  // nearby queries from expanded velocity-change / query-update broadcasts.
  kLazy,
};

// Toggles for the protocol variant run by both server and clients. Server
// and clients of one deployment must share the same options.
struct MobiEyesOptions {
  PropagationMode propagation = PropagationMode::kEager;

  // Safe-period optimization (§4.2): objects skip evaluating queries whose
  // spatial region provably cannot reach them yet.
  bool enable_safe_period = false;

  // Query grouping (§4.1): groupable queries share broadcasts and result
  // reports carry per-group bitmaps.
  bool enable_query_grouping = true;

  // Dead-reckoning threshold Δ (miles): a focal object relays its velocity
  // vector when its true position drifts more than Δ from where the last
  // relayed vector predicts it to be (§3.4).
  Miles dead_reckoning_threshold = 0.2;
};

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_OPTIONS_H_
