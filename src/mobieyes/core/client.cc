#include "mobieyes/core/client.h"

#include <algorithm>
#include <limits>

#include "mobieyes/geo/batch_kernels.h"
#include "mobieyes/obs/lifecycle.h"

namespace mobieyes::core {

using net::FocalState;
using net::Message;
using net::QueryInfo;

namespace {

// Ordering that keeps groupable queries (same focal object) adjacent with
// region reach descending, so group evaluation can stop at the first
// circumscribing radius the object falls outside of (§4.1).
bool EntryLess(const MobiEyesClient::LqtEntry& a,
               const MobiEyesClient::LqtEntry& b) {
  if (a.focal_oid != b.focal_oid) return a.focal_oid < b.focal_oid;
  Miles reach_a = a.region.MaxReach();
  Miles reach_b = b.region.MaxReach();
  if (reach_a != reach_b) return reach_a > reach_b;
  return a.qid < b.qid;
}

}  // namespace

MobiEyesClient::MobiEyesClient(const mobility::World& world, ObjectId oid,
                               net::WirelessNetwork& network,
                               MobiEyesOptions options)
    : world_(&world),
      oid_(oid),
      network_(&network),
      options_(options),
      prev_cell_(world.object(oid).cell) {}

void MobiEyesClient::OnTick() {
  ++tick_;
  const mobility::ObjectState& me = world_->object(oid_);
  Seconds now = world_->now();

  // 0. Hardening: drop LQT entries whose soft-state lease lapsed.
  if (options_.lease_duration > 0.0) ExpireLeases(now);

  // 1. Grid-cell crossing (§3.5).
  if (!(me.cell == prev_cell_)) {
    HandleCellCrossing(me.cell);
  }

  // 2. Focal dead reckoning (§3.4): relay the velocity vector when the true
  // position drifts more than Δ from what the last relayed vector predicts.
  if (has_mq_) {
    geo::Point predicted = last_relayed_.PredictPosition(now);
    if (geo::Distance(me.pos, predicted) >
        options_.dead_reckoning_threshold) {
      SendVelocityReport();
    }
  }

  // 3. Periodic evaluation of the LQT (§3.6).
  EvaluateQueries();

  // 4. Hardening: retransmit unacked tracked uplinks and, periodically,
  // reconcile the LQT with the server.
  if (options_.enable_reliable_uplink && !pending_.empty()) {
    RetryPendingUplinks();
  }
  if (options_.reconcile_period_ticks > 0) MaybeReconcile();
}

void MobiEyesClient::HandleCellCrossing(const geo::CellCoord& new_cell) {
  // Drop queries whose monitoring region no longer covers this object; the
  // object is then provably outside their spatial region, so containment
  // flips to false for entries that were targets.
  std::vector<size_t> stale;
  for (size_t k = 0; k < lqt_.size(); ++k) {
    if (!lqt_[k].mon_region.Contains(new_cell)) stale.push_back(k);
  }
  RemoveEntries(stale);

  // Under eager propagation every object reports the crossing (the server
  // replies with newly relevant queries); under lazy propagation only focal
  // objects must report, since the server tracks their current cell.
  if (options_.propagation == PropagationMode::kEager || has_mq_) {
    SendCellChangeReport(new_cell);
  }
  prev_cell_ = new_cell;
}

void MobiEyesClient::EvaluateQueries() {
  if (lqt_.empty()) return;
  ScopedTimer timed(eval_watch_);
  TRACE_SPAN(trace_, "client.evaluate_queries");

  const mobility::ObjectState& me = world_->object(oid_);
  Seconds now = world_->now();
  const bool grouping = options_.enable_query_grouping;
  // Persistent scratch: this runs every tick for every client with a
  // non-empty LQT, so the flip lists must not allocate at steady state.
  std::vector<size_t>& dirty_groups = scratch_dirty_groups_;
  std::vector<size_t>& flipped = scratch_flipped_;
  dirty_groups.clear();
  flipped.clear();

  size_t begin = 0;
  while (begin < lqt_.size()) {
    size_t end = begin + 1;
    while (end < lqt_.size() &&
           lqt_[end].focal_oid == lqt_[begin].focal_oid) {
      ++end;
    }

    // One distance computation per group: groupable queries share a focal
    // object, and velocity broadcasts keep their kinematics in sync.
    double dist = -1.0;  // computed lazily
    geo::Point focal_pos;
    bool group_dirty = false;
    bool outside_larger = false;  // outside some circumscribing radius seen
    for (size_t k = begin; k < end; ++k) {
      LqtEntry& entry = lqt_[k];
      if (options_.enable_safe_period && entry.ptm > now) {
        ++safe_period_skips_;
        continue;
      }
      bool inside;
      if (grouping && outside_larger) {
        // Entries are sorted by circumscribing radius descending: outside a
        // larger reach implies outside all smaller regions (§4.1) — no
        // containment check needed.
        inside = false;
      } else {
        if (dist < 0.0) {
          focal_pos = entry.focal.PredictPosition(now);
          dist = geo::Distance(me.pos, focal_pos);
        }
        if (dist > entry.region.MaxReach()) {
          inside = false;
          outside_larger = true;
        } else {
          // Same per-lane predicate the batched span kernels apply, so the
          // client-side monitoring check and the oracle classify a point
          // identically.
          inside = geo::kernels::RegionLane(entry.region, focal_pos.x,
                                            focal_pos.y, me.pos.x, me.pos.y);
        }
      }
      ++queries_evaluated_;
      if (inside != entry.is_target) {
        entry.is_target = inside;
        group_dirty = true;
        if (!grouping) flipped.push_back(k);
      }
      if (options_.enable_safe_period && !inside && dist >= 0.0) {
        // Worst case both objects approach head-on at their maximum speeds;
        // subtract the dead-reckoning slack Δ since the focal position is
        // only known to within Δ (§4.2, DESIGN.md). The circumscribing
        // radius upper-bounds the region for any shape.
        double closing_speed = me.max_speed + entry.focal_max_speed;
        double gap = dist - entry.region.MaxReach() -
                     options_.dead_reckoning_threshold;
        if (gap > 0.0) {
          double sp = closing_speed > 0.0
                          ? gap / closing_speed
                          : std::numeric_limits<double>::infinity();
          entry.ptm = now + sp;
        }
      }
    }
    if (group_dirty && grouping) dirty_groups.push_back(begin);
    begin = end;
  }

  if (grouping) {
    SendFlipReports(dirty_groups);
  } else {
    for (size_t k : flipped) {
      net::ResultBitmapReport report;
      report.oid = oid_;
      report.qids.push_back(lqt_[k].qid);
      report.bitmap = lqt_[k].is_target ? 1 : 0;
      SendBitmapReport(std::move(report));
    }
  }
}

void MobiEyesClient::SendFlipReports(const std::vector<size_t>& dirty_groups) {
  // One report per dirty group carrying the group's full bitmap (§4.1).
  for (size_t begin : dirty_groups) {
    net::ResultBitmapReport report;
    report.oid = oid_;
    for (size_t k = begin;
         k < lqt_.size() && lqt_[k].focal_oid == lqt_[begin].focal_oid;
         ++k) {
      if (lqt_[k].is_target) {
        report.bitmap |= uint64_t{1} << report.qids.size();
      }
      report.qids.push_back(lqt_[k].qid);
      if (report.qids.size() == 64) break;  // bitmap capacity guard
    }
    SendBitmapReport(std::move(report));
  }
}

void MobiEyesClient::SendVelocityReport() {
  const mobility::ObjectState& me = world_->object(oid_);
  last_relayed_ = FocalState{me.pos, me.vel, world_->now()};
  net::Message message =
      net::MakeMessage(net::VelocityChangeReport{oid_, last_relayed_});
  if (options_.enable_reliable_uplink) {
    // A newer velocity report supersedes any unacked one: the retransmit of
    // the old vector would be stale anyway.
    std::erase_if(pending_, [this](const PendingUplink& p) {
      if (p.type != net::MessageType::kVelocityChangeReport) return false;
      DropAckRound(p.seq);
      return true;
    });
    PendingUplink entry;
    entry.type = net::MessageType::kVelocityChangeReport;
    TrackUplink(message, std::move(entry));
  }
  network_->SendUplink(oid_, std::move(message));
}

void MobiEyesClient::SendCellChangeReport(const geo::CellCoord& new_cell) {
  geo::CellCoord origin = prev_cell_;
  if (options_.enable_reliable_uplink) {
    // Chain an unacked crossing: keeping its origin cell makes the server's
    // RQI diff span the whole unconfirmed move.
    auto it = std::find_if(pending_.begin(), pending_.end(),
                           [](const PendingUplink& p) {
                             return p.type ==
                                    net::MessageType::kCellChangeReport;
                           });
    if (it != pending_.end()) {
      origin = it->prev_cell;
      DropAckRound(it->seq);
      pending_.erase(it);
    }
  }
  net::Message message = net::MakeMessage(
      net::CellChangeReport{oid_, origin, new_cell});
  if (options_.enable_reliable_uplink) {
    PendingUplink entry;
    entry.type = net::MessageType::kCellChangeReport;
    entry.prev_cell = origin;
    TrackUplink(message, std::move(entry));
  }
  network_->SendUplink(oid_, std::move(message));
}

void MobiEyesClient::SendBitmapReport(net::ResultBitmapReport report) {
  if (!options_.enable_reliable_uplink) {
    network_->SendUplink(oid_, net::MakeMessage(std::move(report)));
    return;
  }
  // A fresh report supersedes pending ones that cover any of the same
  // queries: retransmits rebuild the bitmap from the current LQT, so the
  // newest tracking entry carries the whole truth for its queries.
  std::erase_if(pending_, [this, &report](const PendingUplink& p) {
    if (p.type != net::MessageType::kResultBitmapReport) return false;
    for (QueryId qid : p.qids) {
      if (std::find(report.qids.begin(), report.qids.end(), qid) !=
          report.qids.end()) {
        DropAckRound(p.seq);
        return true;
      }
    }
    return false;
  });
  PendingUplink entry;
  entry.type = net::MessageType::kResultBitmapReport;
  entry.qids = report.qids;
  net::Message message = net::MakeMessage(std::move(report));
  TrackUplink(message, std::move(entry));
  network_->SendUplink(oid_, std::move(message));
}

void MobiEyesClient::DropAckRound(uint32_t seq) {
  if (lifecycle_ != nullptr) {
    lifecycle_->Drop(obs::LifecycleTracker::kUplinkAck, AckKey(seq));
  }
}

void MobiEyesClient::TrackUplink(net::Message& message, PendingUplink entry) {
  entry.seq = ++next_seq_;
  entry.retries = 0;
  entry.retry_at = tick_ + options_.uplink_retry_backoff_ticks;
  message.seq = entry.seq;
  if (lifecycle_ != nullptr) {
    lifecycle_->Stamp(obs::LifecycleTracker::kUplinkAck, AckKey(entry.seq));
  }
  // Bound the tracking state: if the link is so lossy that 16 tracked
  // uplinks pile up, the oldest is abandoned to the lease/reconciliation
  // repair path.
  if (pending_.size() >= 16) {
    DropAckRound(pending_.front().seq);
    pending_.erase(pending_.begin());
  }
  pending_.push_back(std::move(entry));
}

net::Message MobiEyesClient::RebuildPending(const PendingUplink& pending) {
  const mobility::ObjectState& me = world_->object(oid_);
  switch (pending.type) {
    case net::MessageType::kVelocityChangeReport:
      last_relayed_ = FocalState{me.pos, me.vel, world_->now()};
      return net::MakeMessage(
          net::VelocityChangeReport{oid_, last_relayed_});
    case net::MessageType::kCellChangeReport:
      return net::MakeMessage(
          net::CellChangeReport{oid_, pending.prev_cell, me.cell});
    default: {
      net::ResultBitmapReport report;
      report.oid = oid_;
      for (QueryId qid : pending.qids) {
        if (report.qids.size() == 64) break;
        const LqtEntry* entry = FindEntry(qid);
        // A query no longer in the LQT is provably not satisfied by this
        // object, so its bit stays false.
        if (entry != nullptr && entry->is_target) {
          report.bitmap |= uint64_t{1} << report.qids.size();
        }
        report.qids.push_back(qid);
      }
      return net::MakeMessage(std::move(report));
    }
  }
}

void MobiEyesClient::RetryPendingUplinks() {
  for (size_t k = 0; k < pending_.size();) {
    PendingUplink& p = pending_[k];
    if (tick_ < p.retry_at) {
      ++k;
      continue;
    }
    if (p.retries >= options_.uplink_max_retries) {
      // Retry budget spent: give up and leave repair to the lease
      // re-broadcast / reconciliation paths.
      DropAckRound(p.seq);
      pending_.erase(pending_.begin() + k);
      continue;
    }
    ++p.retries;
    p.retry_at =
        tick_ + (static_cast<int64_t>(options_.uplink_retry_backoff_ticks)
                 << p.retries);
    net::Message message = RebuildPending(p);
    message.seq = p.seq;
    network_->SendUplink(oid_, std::move(message));
    ++k;
  }
}

void MobiEyesClient::ExpireLeases(Seconds now) {
  std::vector<size_t> expired;
  for (size_t k = 0; k < lqt_.size(); ++k) {
    if (lqt_[k].lease_expires_at <= now) expired.push_back(k);
  }
  RemoveEntries(expired);
}

void MobiEyesClient::MaybeReconcile() {
  const int64_t period = options_.reconcile_period_ticks;
  if ((tick_ + static_cast<int64_t>(oid_)) % period != 0) return;
  SendReconcile(/*cold_start=*/false);
}

void MobiEyesClient::SendReconcile(bool cold_start) {
  const mobility::ObjectState& me = world_->object(oid_);
  net::LqtReconcileRequest request;
  request.oid = oid_;
  request.cell = me.cell;
  request.cold_start = cold_start;
  request.known_qids.reserve(lqt_.size());
  for (const LqtEntry& entry : lqt_) {
    request.known_qids.push_back(entry.qid);
    if (entry.is_target) request.target_qids.push_back(entry.qid);
  }
  network_->SendUplink(oid_, net::MakeMessage(std::move(request)));
}

void MobiEyesClient::Reset() {
  lqt_.clear();
  // The restart loses the tracked uplinks; their ack rounds are cancelled,
  // not left pending forever.
  for (const PendingUplink& p : pending_) DropAckRound(p.seq);
  pending_.clear();
  has_mq_ = false;
  last_relayed_ = FocalState{};
  prev_cell_ = world_->object(oid_).cell;
  // ISN-style restart: deriving the first sequence number from the tick
  // clock keeps the new incarnation's seq range disjoint from the old
  // one's, so the server's dedup ring never mistakes fresh uplinks for
  // retransmissions. (tick_ itself survives the restart — it models the
  // device's clock, not its memory.)
  next_seq_ = static_cast<uint32_t>(tick_) << 16;
  // Kick off recovery immediately: one cold-start reconcile rebuilds the
  // LQT via the server's diff path rather than waiting out the stagger.
  if (options_.reconcile_period_ticks > 0) {
    SendReconcile(/*cold_start=*/true);
  }
}

void MobiEyesClient::OnDownlink(const Message& message) {
  const mobility::ObjectState& me = world_->object(oid_);
  Seconds now = world_->now();

  switch (message.type) {
    case net::MessageType::kPositionVelocityRequest: {
      network_->SendUplink(
          oid_,
          net::MakeMessage(net::PositionVelocityReport{
              oid_, FocalState{me.pos, me.vel, now}, me.max_speed}));
      break;
    }
    case net::MessageType::kFocalNotification: {
      const auto& note = std::get<net::FocalNotification>(message.payload);
      if (note.qid == kInvalidQueryId) {
        has_mq_ = false;
      } else if (!has_mq_) {
        has_mq_ = true;
        // Mirror what the server just recorded in the FOT: the state this
        // object reported during the installation round trip.
        last_relayed_ = FocalState{me.pos, me.vel, now};
      }
      break;
    }
    case net::MessageType::kQueryInstallBroadcast: {
      const auto& broadcast =
          std::get<net::QueryInstallBroadcast>(message.payload);
      for (const QueryInfo& info : broadcast.queries) {
        InstallIfApplicable(info);
      }
      break;
    }
    case net::MessageType::kVelocityChangeBroadcast: {
      const auto& broadcast =
          std::get<net::VelocityChangeBroadcast>(message.payload);
      for (auto& entry : lqt_) {
        if (entry.focal_oid == broadcast.focal_oid) {
          entry.focal = broadcast.state;
          // The server only relays vectors of live queries: refresh leases.
          entry.lease_expires_at = LeaseExpiry(now);
        }
      }
      if (broadcast.carries_query_info) {
        // Lazy propagation (§3.5): the expanded broadcast lets objects that
        // silently crossed cells install the queries they missed.
        for (const QueryInfo& info : broadcast.queries) {
          InstallIfApplicable(info);
        }
      }
      break;
    }
    case net::MessageType::kQueryUpdateBroadcast: {
      const auto& broadcast =
          std::get<net::QueryUpdateBroadcast>(message.payload);
      std::vector<size_t> stale;
      for (const QueryInfo& info : broadcast.queries) {
        LqtEntry* entry = FindEntry(info.qid);
        if (entry != nullptr) {
          if (info.mon_region.Contains(me.cell)) {
            entry->focal = info.focal;
            entry->mon_region = info.mon_region;
            entry->lease_expires_at = LeaseExpiry(now);
          } else {
            stale.push_back(static_cast<size_t>(entry - lqt_.data()));
          }
        } else {
          InstallIfApplicable(info);
        }
      }
      std::sort(stale.begin(), stale.end());
      RemoveEntries(stale);
      break;
    }
    case net::MessageType::kQueryRemoveBroadcast: {
      const auto& broadcast =
          std::get<net::QueryRemoveBroadcast>(message.payload);
      for (QueryId qid : broadcast.qids) {
        LqtEntry* entry = FindEntry(qid);
        if (entry != nullptr) {
          lqt_.erase(lqt_.begin() + (entry - lqt_.data()));
        }
      }
      break;
    }
    case net::MessageType::kNewQueriesNotification: {
      const auto& note =
          std::get<net::NewQueriesNotification>(message.payload);
      for (const QueryInfo& info : note.queries) {
        InstallIfApplicable(info);
      }
      break;
    }
    case net::MessageType::kUplinkAck: {
      const auto& ack = std::get<net::UplinkAck>(message.payload);
      if (lifecycle_ != nullptr) {
        // Duplicate acks find no open round and resolve nothing.
        lifecycle_->ResolveIfPending(obs::LifecycleTracker::kUplinkAck,
                                     AckKey(ack.seq));
      }
      std::erase_if(pending_, [&ack](const PendingUplink& p) {
        return p.seq == ack.seq;
      });
      break;
    }
    default:
      // Uplink-only types are never valid on the downlink; ignore.
      break;
  }
}

void MobiEyesClient::InstallIfApplicable(const QueryInfo& info) {
  if (info.focal_oid == oid_) return;  // never a target of its own query
  const mobility::ObjectState& me = world_->object(oid_);
  if (!info.mon_region.Contains(me.cell)) return;
  if (me.attr > info.filter_threshold) return;  // filter not satisfied

  if (LqtEntry* existing = FindEntry(info.qid)) {
    existing->focal = info.focal;
    existing->mon_region = info.mon_region;
    existing->focal_max_speed = info.focal_max_speed;
    existing->lease_expires_at = LeaseExpiry(world_->now());
    return;
  }
  LqtEntry entry;
  entry.qid = info.qid;
  entry.focal_oid = info.focal_oid;
  entry.focal = info.focal;
  entry.region = info.region;
  entry.filter_threshold = info.filter_threshold;
  entry.mon_region = info.mon_region;
  entry.focal_max_speed = info.focal_max_speed;
  entry.lease_expires_at = LeaseExpiry(world_->now());
  lqt_.insert(lqt_.begin() + InsertPosition(entry), std::move(entry));
}

void MobiEyesClient::RemoveEntries(const std::vector<size_t>& indices) {
  if (indices.empty()) return;
  // Report a flip to "not a target" for entries that were in a result: once
  // outside the monitoring region the object is provably outside the
  // query's spatial region.
  net::ResultBitmapReport report;
  report.oid = oid_;
  for (size_t k : indices) {
    if (lqt_[k].is_target) {
      report.qids.push_back(lqt_[k].qid);
    }
  }
  // Erase back to front so earlier indices stay valid.
  for (auto it = indices.rbegin(); it != indices.rend(); ++it) {
    lqt_.erase(lqt_.begin() + *it);
  }
  if (!report.qids.empty()) {
    SendBitmapReport(std::move(report));
  }
}

std::optional<bool> MobiEyesClient::IsTargetOf(QueryId qid) const {
  for (const auto& entry : lqt_) {
    if (entry.qid == qid) return entry.is_target;
  }
  return std::nullopt;
}

MobiEyesClient::LqtEntry* MobiEyesClient::FindEntry(QueryId qid) {
  for (auto& entry : lqt_) {
    if (entry.qid == qid) return &entry;
  }
  return nullptr;
}

size_t MobiEyesClient::InsertPosition(const LqtEntry& entry) const {
  size_t lo = 0;
  while (lo < lqt_.size() && EntryLess(lqt_[lo], entry)) ++lo;
  return lo;
}

}  // namespace mobieyes::core
