#ifndef MOBIEYES_CORE_SHARD_DAEMON_H_
#define MOBIEYES_CORE_SHARD_DAEMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/common/status.h"
#include "mobieyes/core/server_shard.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/net/backplane.h"
#include "mobieyes/net/framing.h"

namespace mobieyes::core {

// --- Step-batch payload codec (DESIGN.md §13) -------------------------------
//
// One kStepBatch frame carries every op a shard replica must apply for one
// simulation step, coalesced: u32 op count, then per op a u8 opcode and its
// body. Opcodes: 0 rqi_add / 1 rqi_remove (qid i64 + mon_region 4xi32),
// 2 adopt (u32 length + encoded kShardHandoff message — the migration's
// destination side), 3 extract (oid i64 — the source side), 4 partition
// update (epoch u64 + u32 move count + per move flat i32 + to_shard i32 —
// a rebalance advancing the replica's shard map), 5 rqi_row_set (cell
// 2xi32 + u32 id count + i64 ids — a rebalanced cell's row landing on its
// new owner), 6 rqi_row_clear (cell 2xi32 — the old owner dropping it).

class StepBatchBuilder {
 public:
  void RqiOp(bool add, QueryId qid, const geo::CellRange& mon_region);
  void Adopt(const net::Message& handoff_message);
  void Extract(ObjectId oid);
  void PartitionUpdate(uint64_t epoch, const std::vector<CellMove>& moves);
  void RqiRowSet(const geo::CellCoord& cell, const std::vector<QueryId>& row);
  void RqiRowClear(const geo::CellCoord& cell);

  bool empty() const { return count_ == 0; }
  uint32_t op_count() const { return count_; }
  // Moves the finished payload (count prefix + ops) out; the builder resets.
  std::vector<uint8_t> Finish();

 private:
  uint32_t count_ = 0;
  std::vector<uint8_t> ops_;
  std::vector<uint8_t> scratch_;
};

// Applies a kStepBatch payload to `shard`. Fails atomically per op (a
// malformed op stops the batch); sets *ops_applied when non-null. `map` is
// the replica's own shard map, advanced by partition-update ops; a batch
// carrying one fails when `map` is null (the daemon always passes its map;
// only epoch-0-frozen tests may omit it).
Status ApplyStepBatch(const uint8_t* data, size_t size, ServerShard* shard,
                      uint32_t* ops_applied, ShardMap* map = nullptr);

// --- Config payload ----------------------------------------------------------
// kConfig carries everything a daemon needs to rebuild its shard's world
// view: universe rect (4xf64), alpha f64, shard count u32, partition u8.
// When the supervisor's partition has advanced past epoch 0, the payload
// grows an optional tail: epoch u64 + the RLE cell→shard assignment
// (EncodeAssignment). Epoch-0 configs omit the tail, keeping the wire
// bytes identical to the pre-epoch protocol.

struct ShardConfig {
  geo::Rect universe{0.0, 0.0, 1.0, 1.0};
  double alpha = 1.0;
  ShardingOptions sharding;
  uint64_t epoch = 0;
  std::vector<int32_t> owners;  // empty at epoch 0 (seed formulas apply)
};

void EncodeShardConfig(const ShardConfig& config, std::vector<uint8_t>* out);
Status DecodeShardConfig(const uint8_t* data, size_t size,
                         ShardConfig* config);

// --- Daemon ------------------------------------------------------------------

struct ShardDaemonOptions {
  std::string address;  // supervisor's backplane, "uds:..." or "tcp:..."
  int shard_id = 0;
  uint64_t seed = 1;  // reconnect jitter stream
  // Give up (exit nonzero) when the supervisor stays unreachable this long.
  int connect_timeout_ms = 10000;
  bool verbose = false;
};

// One shard replica process (tools/mobieyes_shardd): connects to the
// supervisor, announces itself with kHello, then applies whatever config,
// state syncs and step batches arrive, acking each with its state digest.
// On EOF it reconnects with seeded-jitter exponential backoff; a clean
// kShutdown ends the process.
class ShardDaemon {
 public:
  explicit ShardDaemon(const ShardDaemonOptions& options);

  // Connect-serve loop; returns the process exit code.
  int Run();

  // Applies one frame, queueing any ack on `link`. Returns false when the
  // daemon should exit (kShutdown). Exposed for tests.
  bool HandleFrame(const net::Frame& frame, net::PeerLink* link);

  const ServerShard* shard() const { return shard_.get(); }

 private:
  bool ServeConnection(int fd);

  ShardDaemonOptions options_;
  Rng rng_;
  std::unique_ptr<geo::Grid> grid_;
  std::unique_ptr<ShardMap> map_;
  std::unique_ptr<ServerShard> shard_;
};

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_SHARD_DAEMON_H_
