#ifndef MOBIEYES_CORE_SHARD_DAEMON_H_
#define MOBIEYES_CORE_SHARD_DAEMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/common/status.h"
#include "mobieyes/core/server_shard.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/net/backplane.h"
#include "mobieyes/net/framing.h"

namespace mobieyes::core {

// --- Step-batch payload codec (DESIGN.md §13) -------------------------------
//
// One kStepBatch frame carries every op a shard replica must apply for one
// simulation step, coalesced: u32 op count, then per op a u8 opcode and its
// body. Opcodes: 0 rqi_add / 1 rqi_remove (qid i64 + mon_region 4xi32),
// 2 adopt (u32 length + encoded kShardHandoff message — the migration's
// destination side), 3 extract (oid i64 — the source side).

class StepBatchBuilder {
 public:
  void RqiOp(bool add, QueryId qid, const geo::CellRange& mon_region);
  void Adopt(const net::Message& handoff_message);
  void Extract(ObjectId oid);

  bool empty() const { return count_ == 0; }
  uint32_t op_count() const { return count_; }
  // Moves the finished payload (count prefix + ops) out; the builder resets.
  std::vector<uint8_t> Finish();

 private:
  uint32_t count_ = 0;
  std::vector<uint8_t> ops_;
  std::vector<uint8_t> scratch_;
};

// Applies a kStepBatch payload to `shard`. Fails atomically per op (a
// malformed op stops the batch); sets *ops_applied when non-null.
Status ApplyStepBatch(const uint8_t* data, size_t size, ServerShard* shard,
                      uint32_t* ops_applied);

// --- Config payload ----------------------------------------------------------
// kConfig carries everything a daemon needs to rebuild its shard's world
// view: universe rect (4xf64), alpha f64, shard count u32, partition u8.

struct ShardConfig {
  geo::Rect universe{0.0, 0.0, 1.0, 1.0};
  double alpha = 1.0;
  ShardingOptions sharding;
};

void EncodeShardConfig(const ShardConfig& config, std::vector<uint8_t>* out);
Status DecodeShardConfig(const uint8_t* data, size_t size,
                         ShardConfig* config);

// --- Daemon ------------------------------------------------------------------

struct ShardDaemonOptions {
  std::string address;  // supervisor's backplane, "uds:..." or "tcp:..."
  int shard_id = 0;
  uint64_t seed = 1;  // reconnect jitter stream
  // Give up (exit nonzero) when the supervisor stays unreachable this long.
  int connect_timeout_ms = 10000;
  bool verbose = false;
};

// One shard replica process (tools/mobieyes_shardd): connects to the
// supervisor, announces itself with kHello, then applies whatever config,
// state syncs and step batches arrive, acking each with its state digest.
// On EOF it reconnects with seeded-jitter exponential backoff; a clean
// kShutdown ends the process.
class ShardDaemon {
 public:
  explicit ShardDaemon(const ShardDaemonOptions& options);

  // Connect-serve loop; returns the process exit code.
  int Run();

  // Applies one frame, queueing any ack on `link`. Returns false when the
  // daemon should exit (kShutdown). Exposed for tests.
  bool HandleFrame(const net::Frame& frame, net::PeerLink* link);

  const ServerShard* shard() const { return shard_.get(); }

 private:
  bool ServeConnection(int fd);

  ShardDaemonOptions options_;
  Rng rng_;
  std::unique_ptr<geo::Grid> grid_;
  std::unique_ptr<ShardMap> map_;
  std::unique_ptr<ServerShard> shard_;
};

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_SHARD_DAEMON_H_
