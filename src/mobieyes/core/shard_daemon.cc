#include "mobieyes/core/shard_daemon.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "mobieyes/net/codec.h"

namespace mobieyes::core {

namespace {

constexpr uint8_t kOpRqiAdd = 0;
constexpr uint8_t kOpRqiRemove = 1;
constexpr uint8_t kOpAdopt = 2;
constexpr uint8_t kOpExtract = 3;
constexpr uint8_t kOpPartitionUpdate = 4;
constexpr uint8_t kOpRqiRowSet = 5;
constexpr uint8_t kOpRqiRowClear = 6;

constexpr uint32_t kHelloVersion = 3;  // v3: versioned partition epochs
constexpr size_t kAckQueueBytes = 1u << 20;

}  // namespace

void StepBatchBuilder::RqiOp(bool add, QueryId qid,
                             const geo::CellRange& mon_region) {
  net::ByteWriter w(&ops_);
  w.U8(add ? kOpRqiAdd : kOpRqiRemove);
  w.I64(qid);
  w.Range(mon_region);
  ++count_;
}

void StepBatchBuilder::Adopt(const net::Message& handoff_message) {
  net::ByteWriter w(&ops_);
  w.U8(kOpAdopt);
  std::vector<uint8_t> encoded;
  net::MessageCodec::EncodeInto(handoff_message, &scratch_, &encoded);
  w.U32(static_cast<uint32_t>(encoded.size()));
  ops_.insert(ops_.end(), encoded.begin(), encoded.end());
  ++count_;
}

void StepBatchBuilder::Extract(ObjectId oid) {
  net::ByteWriter w(&ops_);
  w.U8(kOpExtract);
  w.I64(oid);
  ++count_;
}

void StepBatchBuilder::PartitionUpdate(uint64_t epoch,
                                       const std::vector<CellMove>& moves) {
  net::ByteWriter w(&ops_);
  w.U8(kOpPartitionUpdate);
  w.U64(epoch);
  w.U32(static_cast<uint32_t>(moves.size()));
  for (const CellMove& move : moves) {
    w.I32(move.flat);
    w.I32(move.to_shard);
  }
  ++count_;
}

void StepBatchBuilder::RqiRowSet(const geo::CellCoord& cell,
                                 const std::vector<QueryId>& row) {
  net::ByteWriter w(&ops_);
  w.U8(kOpRqiRowSet);
  w.Cell(cell);
  w.U32(static_cast<uint32_t>(row.size()));
  for (QueryId qid : row) w.I64(qid);
  ++count_;
}

void StepBatchBuilder::RqiRowClear(const geo::CellCoord& cell) {
  net::ByteWriter w(&ops_);
  w.U8(kOpRqiRowClear);
  w.Cell(cell);
  ++count_;
}

std::vector<uint8_t> StepBatchBuilder::Finish() {
  std::vector<uint8_t> payload;
  net::ByteWriter w(&payload);
  w.U32(count_);
  payload.insert(payload.end(), ops_.begin(), ops_.end());
  count_ = 0;
  ops_.clear();
  return payload;
}

Status ApplyStepBatch(const uint8_t* data, size_t size, ServerShard* shard,
                      uint32_t* ops_applied, ShardMap* map) {
  net::ByteReader r(data, size);
  uint32_t count = r.U32();
  uint32_t applied = 0;
  for (uint32_t k = 0; r.ok() && k < count; ++k) {
    uint8_t op = r.U8();
    switch (op) {
      case kOpRqiAdd:
      case kOpRqiRemove: {
        QueryId qid = r.I64();
        geo::CellRange region = r.Range();
        if (!r.ok()) break;
        if (op == kOpRqiAdd) {
          shard->RqiAdd(qid, region);
        } else {
          shard->RqiRemove(qid, region);
        }
        ++applied;
        break;
      }
      case kOpAdopt: {
        uint32_t len = r.U32();
        if (len > r.remaining()) {
          r.Fail();
          break;
        }
        std::vector<uint8_t> encoded(data + (size - r.remaining()),
                                     data + (size - r.remaining()) + len);
        r.Skip(len);
        Result<net::Message> decoded = net::MessageCodec::Decode(encoded);
        if (!decoded.ok() ||
            decoded->type != net::MessageType::kShardHandoff) {
          r.Fail();
          break;
        }
        shard->AdoptFocal(
            std::move(std::get<net::ShardHandoff>(decoded->payload)));
        ++applied;
        break;
      }
      case kOpExtract: {
        ObjectId oid = r.I64();
        if (!r.ok()) break;
        // Discard the handoff: the destination shard's daemon adopts the
        // encoded copy its own batch carries.
        shard->ExtractFocal(oid, /*to_shard=*/-1);
        ++applied;
        break;
      }
      case kOpPartitionUpdate: {
        uint64_t epoch = r.U64();
        uint32_t move_count = r.U32();
        if (!r.ok() || map == nullptr ||
            static_cast<size_t>(move_count) * 8 > r.remaining()) {
          r.Fail();
          break;
        }
        std::vector<CellMove> moves(move_count);
        for (uint32_t m = 0; m < move_count; ++m) {
          moves[m].flat = r.I32();
          moves[m].to_shard = r.I32();
        }
        if (!r.ok() || !map->ApplyMoves(epoch, moves).ok()) {
          r.Fail();
          break;
        }
        ++applied;
        break;
      }
      case kOpRqiRowSet: {
        geo::CellCoord cell = r.Cell();
        uint32_t id_count = r.U32();
        if (!r.ok() || static_cast<size_t>(id_count) * 8 > r.remaining()) {
          r.Fail();
          break;
        }
        std::vector<QueryId> row(id_count);
        for (uint32_t m = 0; m < id_count; ++m) row[m] = r.I64();
        if (!r.ok()) break;
        shard->SetRqiRow(cell, std::move(row));
        ++applied;
        break;
      }
      case kOpRqiRowClear: {
        geo::CellCoord cell = r.Cell();
        if (!r.ok()) break;
        shard->TakeRqiRow(cell);  // drop the old owner's copy
        ++applied;
        break;
      }
      default:
        r.Fail();
        break;
    }
  }
  if (ops_applied != nullptr) *ops_applied = applied;
  if (!r.ok() || r.remaining() != 0) {
    return Status::InvalidArgument("step batch: malformed op stream");
  }
  return Status::OK();
}

void EncodeShardConfig(const ShardConfig& config, std::vector<uint8_t>* out) {
  net::ByteWriter w(out);
  w.F64(config.universe.lx);
  w.F64(config.universe.ly);
  w.F64(config.universe.w);
  w.F64(config.universe.h);
  w.F64(config.alpha);
  w.U32(static_cast<uint32_t>(config.sharding.num_shards));
  w.U8(config.sharding.partition == ShardPartition::kRowBand ? 0 : 1);
  if (config.epoch > 0) {
    // Optional epoch tail (DESIGN.md §15); epoch-0 configs stay on the
    // pre-epoch wire format byte for byte.
    w.U64(config.epoch);
    EncodeAssignment(config.owners, out);
  }
}

Status DecodeShardConfig(const uint8_t* data, size_t size,
                         ShardConfig* config) {
  net::ByteReader r(data, size);
  config->universe.lx = r.F64();
  config->universe.ly = r.F64();
  config->universe.w = r.F64();
  config->universe.h = r.F64();
  config->alpha = r.F64();
  config->sharding.num_shards = static_cast<int>(r.U32());
  config->sharding.partition =
      r.U8() == 0 ? ShardPartition::kRowBand : ShardPartition::kHash;
  config->epoch = 0;
  config->owners.clear();
  if (r.ok() && r.remaining() > 0) {
    config->epoch = r.U64();
    if (!r.ok() || config->epoch == 0) {
      return Status::InvalidArgument("shard config: malformed epoch tail");
    }
    size_t consumed = 0;
    const uint8_t* tail = data + (size - r.remaining());
    MOBIEYES_RETURN_NOT_OK(DecodeAssignment(tail, r.remaining(),
                                            config->sharding.num_shards,
                                            &config->owners, &consumed));
    r.Skip(consumed);
  }
  if (!r.ok() || r.remaining() != 0) {
    return Status::InvalidArgument("shard config: malformed payload");
  }
  return Status::OK();
}

ShardDaemon::ShardDaemon(const ShardDaemonOptions& options)
    : options_(options),
      rng_(options.seed * 2654435761u + static_cast<uint64_t>(
                                            options.shard_id + 1)) {}

bool ShardDaemon::HandleFrame(const net::Frame& frame, net::PeerLink* link) {
  switch (frame.kind) {
    case net::FrameKind::kConfig: {
      ShardConfig config;
      Status st = DecodeShardConfig(frame.payload.data(),
                                    frame.payload.size(), &config);
      if (!st.ok()) {
        if (options_.verbose) {
          std::fprintf(stderr, "mobieyes_shardd[%d]: %s\n",
                       options_.shard_id, st.ToString().c_str());
        }
        return true;
      }
      Result<geo::Grid> grid = geo::Grid::Make(config.universe, config.alpha);
      if (!grid.ok()) return true;
      grid_ = std::make_unique<geo::Grid>(*grid);
      map_ = std::make_unique<ShardMap>(*grid_, config.sharding);
      if (config.epoch > 0 &&
          !map_->SetAssignment(config.epoch, config.owners).ok()) {
        // A config we cannot honour leaves the daemon unconfigured; the
        // supervisor's digest protocol forces a resync.
        shard_.reset();
        map_.reset();
        grid_.reset();
        return true;
      }
      shard_ = std::make_unique<ServerShard>(options_.shard_id, *grid_,
                                             *map_);
      return true;
    }
    case net::FrameKind::kStateSync: {
      net::Frame ack;
      ack.kind = net::FrameKind::kStateSyncAck;
      ack.shard = static_cast<uint8_t>(options_.shard_id);
      ack.step = frame.step;
      uint64_t digest = 0;
      uint8_t ok = 0;
      if (shard_ != nullptr) {
        Status st = shard_->LoadStateSync(frame.payload.data(),
                                          frame.payload.size());
        ok = st.ok() ? 1 : 0;
        digest = shard_->StateDigest();
      }
      net::ByteWriter w(&ack.payload);
      w.U64(digest);
      w.U8(ok);
      // Epoch tail mirrors the config codec: only emitted past epoch 0, so
      // epoch-0 runs keep the pre-epoch ack bytes.
      if (map_ != nullptr && map_->epoch() > 0) w.U64(map_->epoch());
      link->Send(ack, kAckQueueBytes);
      return true;
    }
    case net::FrameKind::kStepBatch: {
      net::Frame ack;
      ack.kind = net::FrameKind::kStepAck;
      ack.shard = static_cast<uint8_t>(options_.shard_id);
      ack.step = frame.step;
      uint64_t digest = 0;
      uint32_t applied = 0;
      uint8_t ok = 0;
      if (shard_ != nullptr) {
        Status st = ApplyStepBatch(frame.payload.data(),
                                   frame.payload.size(), shard_.get(),
                                   &applied, map_.get());
        ok = st.ok() ? 1 : 0;
        digest = shard_->StateDigest();
      }
      net::ByteWriter w(&ack.payload);
      w.U64(digest);
      w.U32(applied);
      w.U8(ok);
      if (map_ != nullptr && map_->epoch() > 0) w.U64(map_->epoch());
      link->Send(ack, kAckQueueBytes);
      return true;
    }
    case net::FrameKind::kHeartbeat: {
      net::Frame ack;
      ack.kind = net::FrameKind::kHeartbeatAck;
      ack.shard = static_cast<uint8_t>(options_.shard_id);
      ack.step = frame.step;
      link->Send(ack, kAckQueueBytes);
      return true;
    }
    case net::FrameKind::kScanRequest: {
      // Authority-mode RQI row read (DESIGN.md §14): the router asks for the
      // queries monitoring one grid cell. The reply must be byte-for-byte
      // what the router's warm mirror would produce — rows are built from
      // the identical op sequence, so vector order matches by construction
      // and the state digest protocol catches any divergence.
      net::Frame res;
      res.kind = net::FrameKind::kScanResult;
      res.shard = static_cast<uint8_t>(options_.shard_id);
      res.step = frame.step;
      net::ByteReader r(frame.payload.data(), frame.payload.size());
      geo::CellCoord cell;
      cell.i = r.I32();
      cell.j = r.I32();
      // Optional epoch tail: the supervisor stamps the partition epoch it
      // expects the answer under (omitted at epoch 0). A daemon whose map
      // sits at a different epoch — or that no longer owns the cell after a
      // rebalance — must refuse rather than answer from a stale slice; the
      // supervisor falls back to its warm mirror and resyncs.
      uint64_t scan_epoch = 0;
      if (r.ok() && r.remaining() > 0) scan_epoch = r.U64();
      net::ByteWriter w(&res.payload);
      if (shard_ == nullptr || !r.ok() || r.remaining() != 0 ||
          !grid_->IsValid(cell) || scan_epoch != map_->epoch() ||
          map_->ShardOf(cell) != options_.shard_id) {
        w.U8(0);
        w.U64(0);
        w.U32(0);
      } else {
        const std::vector<QueryId>& row = shard_->QueriesForCell(cell);
        w.U8(1);
        // The digest proves the row came from the authoritative state: the
        // supervisor merges the result only when it matches its mirror's.
        w.U64(shard_->StateDigest());
        w.U32(static_cast<uint32_t>(row.size()));
        for (QueryId qid : row) w.I64(qid);
      }
      link->Send(res, kAckQueueBytes);
      return true;
    }
    case net::FrameKind::kShutdown:
      return false;
    default:
      return true;  // supervisor-bound kinds: ignore
  }
}

bool ShardDaemon::ServeConnection(int fd) {
  net::PeerLink link;
  link.Adopt(fd);

  net::Frame hello;
  hello.kind = net::FrameKind::kHello;
  hello.shard = static_cast<uint8_t>(options_.shard_id);
  net::ByteWriter w(&hello.payload);
  w.U32(kHelloVersion);
  link.Send(hello, kAckQueueBytes);

  std::vector<net::Frame> frames;
  std::vector<int> ready;
  while (link.connected()) {
    link.Flush();
    net::PollReadable({link.fd()}, /*timeout_ms=*/1000, &ready);
    if (ready.empty()) continue;
    frames.clear();
    bool alive = link.Receive(&frames);
    for (const net::Frame& frame : frames) {
      if (!HandleFrame(frame, &link)) {
        link.Flush();
        return false;  // clean shutdown
      }
    }
    if (!alive) break;  // EOF after draining: reconnect
  }
  return true;
}

int ShardDaemon::Run() {
  int backoff_ms = 10;
  int waited_ms = 0;
  for (;;) {
    int fd = -1;
    Status st = net::BackplaneConnect(options_.address, /*timeout_ms=*/0,
                                      /*retry_sleep_ms=*/0, &fd);
    if (st.ok()) {
      if (options_.verbose) {
        std::fprintf(stderr, "mobieyes_shardd[%d]: connected to %s\n",
                     options_.shard_id, options_.address.c_str());
      }
      backoff_ms = 10;
      waited_ms = 0;
      if (!ServeConnection(fd)) return 0;
      continue;  // lost the supervisor: reconnect with backoff
    }
    if (waited_ms >= options_.connect_timeout_ms) {
      std::fprintf(stderr, "mobieyes_shardd[%d]: giving up on %s: %s\n",
                   options_.shard_id, options_.address.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    // Seeded-jitter exponential backoff: deterministic per (seed, shard),
    // desynchronized across shards so a restart herd does not reconnect in
    // lockstep.
    int sleep_ms =
        backoff_ms + static_cast<int>(rng_.NextUint64(
                         static_cast<uint64_t>(backoff_ms) + 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    waited_ms += sleep_ms;
    backoff_ms = std::min(backoff_ms * 2, 500);
  }
}

}  // namespace mobieyes::core
