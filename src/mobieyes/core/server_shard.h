#ifndef MOBIEYES_CORE_SERVER_SHARD_H_
#define MOBIEYES_CORE_SERVER_SHARD_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/common/status.h"
#include "mobieyes/common/units.h"
#include "mobieyes/core/options.h"
#include "mobieyes/core/rqi.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/net/message.h"

namespace mobieyes::core {

inline constexpr Seconds kNeverExpires =
    std::numeric_limits<Seconds>::infinity();

// FOT row (paper §3.2): last reported kinematics of a focal object plus
// the queries bound to it.
struct FotEntry {
  net::FocalState state;
  double max_speed = 0.0;  // miles/second, carried for safe periods
  // Last known grid cell, kept current by cell-change reports. The
  // recorded kinematics must stay untouched between velocity reports or
  // dead-reckoning predictions downstream would diverge.
  geo::CellCoord cell;
  std::vector<QueryId> queries;
};

// SQT row (paper §3.2) plus the expiry time: the paper's example queries
// are time-bounded ("during next 2 hours"), so a query may carry a
// duration after which the server uninstalls it everywhere.
struct SqtEntry {
  QueryId qid = kInvalidQueryId;
  ObjectId focal_oid = kInvalidObjectId;
  geo::QueryRegion region;
  double filter_threshold = 1.0;
  geo::CellCoord curr_cell;
  geo::CellRange mon_region;
  Seconds expires_at = kNeverExpires;
  // Soft-state lease (options.lease_duration > 0): when the deadline
  // passes, the server re-broadcasts the query's monitoring-region state
  // so clients that missed the original install or update recover.
  Seconds lease_renew_at = std::numeric_limits<Seconds>::infinity();
  std::unordered_set<ObjectId> result;
};

// One cell reassignment of a rebalance step: grid cell `flat` (row-major
// flat index) moves to shard `to_shard`.
struct CellMove {
  int32_t flat = 0;
  int32_t to_shard = 0;

  bool operator==(const CellMove& other) const {
    return flat == other.flat && to_shard == other.to_shard;
  }
};

// Versioned grid-to-shard assignment (DESIGN.md §10, §15). Epoch 0 is the
// seed partition — a pure function of the grid shape and the sharding
// options, so every component (router, shards, a restore with a different
// shard count) derives the same ownership. Rebalancing advances the epoch
// and installs an explicit per-cell owner table on top of the seed; the
// epoch number travels with checkpoints, state syncs and scan requests so
// no component ever answers for a cell under a stale assignment.
class ShardMap {
 public:
  ShardMap(const geo::Grid& grid, const ShardingOptions& options);

  int num_shards() const { return num_shards_; }
  ShardPartition partition() const { return partition_; }
  uint64_t epoch() const { return epoch_; }

  // Owning shard of a grid cell, in [0, num_shards). The epoch-0 fast
  // paths are byte-for-byte the frozen-partition formulas, so runs without
  // rebalancing are unchanged.
  int ShardOf(const geo::CellCoord& cell) const {
    if (num_shards_ == 1) return 0;
    if (epoch_ > 0) {
      return owner_[static_cast<size_t>(cell.j) *
                        static_cast<size_t>(columns_) +
                    static_cast<size_t>(cell.i)];
    }
    if (partition_ == ShardPartition::kRowBand) {
      return std::min(cell.j / band_rows_, num_shards_ - 1);
    }
    return static_cast<int>(geo::CellCoordHash{}(cell) %
                            static_cast<size_t>(num_shards_));
  }

  // Shards owning at least one cell of `range`, ascending. Row-band
  // partitions answer exactly from the row interval; the hash partition
  // (and any epoch > 0 assignment) enumerates the range's cells — or
  // reports every shard for a range too large to be worth walking.
  std::vector<int> ShardsIntersecting(const geo::CellRange& range) const;

  // Epoch-0 owner of a flat cell index (the seed assignment).
  int SeedOwner(int64_t flat) const;

  // Materializes the current assignment (explicit table, or the seed at
  // epoch 0) into *out, one owner per flat cell index.
  void AssignmentSnapshot(std::vector<int32_t>* out) const;

  // Installs an explicit assignment at `epoch`. An empty `owners` resets
  // the table to the seed partition while keeping the epoch counter — the
  // N→M restore path, where a stored owner table indexes shards the new
  // deployment does not have. Fails when `owners` is non-empty but does
  // not cover every cell with a valid shard id.
  Status SetAssignment(uint64_t epoch, const std::vector<int32_t>& owners);

  // Applies a move set on top of the current assignment and advances to
  // `new_epoch` (must be greater than the current epoch).
  Status ApplyMoves(uint64_t new_epoch, const std::vector<CellMove>& moves);

  int64_t cell_count() const { return cell_count_; }

 private:
  int num_shards_;
  ShardPartition partition_;
  int32_t band_rows_;  // rows per shard band (row-band partitioning)
  int32_t columns_;
  int64_t cell_count_;
  uint64_t epoch_ = 0;
  // Explicit per-cell owners; sized cell_count_ whenever epoch_ > 0.
  std::vector<int32_t> owner_;
};

// Run-length codec for an explicit owner table (partition epochs travel in
// checkpoint images and shard-config frames). Encode appends to *out;
// Decode consumes exactly the encoded bytes from a reader-owned buffer and
// fails on truncation or owner ids outside [0, num_shards).
void EncodeAssignment(const std::vector<int32_t>& owners,
                      std::vector<uint8_t>* out);
Status DecodeAssignment(const uint8_t* data, size_t size, int num_shards,
                        std::vector<int32_t>* owners, size_t* consumed);

// One grid partition's slice of the server state: the FOT/SQT entries homed
// on its cells and the RQI rows of the cells it owns. A shard is a passive
// state container plus the scans that parallelize across shards — all
// orchestration (uplink dispatch, broadcasts, cross-shard reads) lives in
// the ShardRouter, which is what keeps a multi-shard run's observable
// behavior identical to the monolith.
class ServerShard {
 public:
  // Per-shard operational counters, exported as shard_id-tagged gauges
  // (timing-flagged: operational visibility, excluded from deterministic
  // metric exports, which must not vary with the shard count).
  struct Stats {
    uint64_t uplinks_routed = 0;  // uplinks whose ingress shard was this one
    uint64_t handoffs_in = 0;
    uint64_t handoffs_out = 0;
    // Step-phase wall time spent on this shard's scans. The max across
    // shards is the critical path of a perfectly parallel step, which is
    // how the shard bench reports speedup independently of how many
    // hardware threads the measuring machine happens to have.
    uint64_t step_micros = 0;
  };

  // Checkpoint fragment: this shard's table entries, encoded per entry in
  // ascending key order. The router k-way merges fragments from all shards
  // into the global sorted-key image — byte-identical to the monolith's.
  struct ImageChunk {
    std::vector<int64_t> keys;    // ascending
    std::vector<size_t> offsets;  // keys.size() + 1 offsets into bytes
    std::vector<uint8_t> bytes;
  };

  ServerShard(int shard_id, const geo::Grid& grid, const ShardMap& map)
      : shard_id_(shard_id), grid_(&grid), map_(&map), rqi_(grid) {}

  int shard_id() const { return shard_id_; }
  bool OwnsCell(const geo::CellCoord& cell) const {
    return map_->ShardOf(cell) == shard_id_;
  }

  // --- State tables (mutated only by the router, serially) -----------------

  std::unordered_map<ObjectId, FotEntry>& fot() { return fot_; }
  const std::unordered_map<ObjectId, FotEntry>& fot() const { return fot_; }
  std::unordered_map<QueryId, SqtEntry>& sqt() { return sqt_; }
  const std::unordered_map<QueryId, SqtEntry>& sqt() const { return sqt_; }

  FotEntry* FindFocal(ObjectId oid);
  const FotEntry* FindFocal(ObjectId oid) const;
  SqtEntry* FindQuery(QueryId qid);
  const SqtEntry* FindQuery(QueryId qid) const;

  // --- RQI slice -----------------------------------------------------------
  // Full-grid-shaped index populated only on owned cells. Registration is
  // filtered per cell, preserving the monolith's per-row insertion order
  // (rows are independent, so filtering cannot reorder within a row).

  void RqiAdd(QueryId qid, const geo::CellRange& mon_region);
  void RqiRemove(QueryId qid, const geo::CellRange& mon_region);
  const std::vector<QueryId>& QueriesForCell(const geo::CellCoord& c) const {
    return rqi_.QueriesForCell(c);
  }
  const ReverseQueryIndex& rqi() const { return rqi_; }

  // Whole-row transfer for partition rebalancing (DESIGN.md §15): when a
  // cell changes owner, its RQI row moves verbatim — order preserved, since
  // row order drives broadcast order. TakeRqiRow detaches and returns the
  // row (leaving it empty); SetRqiRow installs a row on the new owner.
  std::vector<QueryId> TakeRqiRow(const geo::CellCoord& c) {
    return rqi_.TakeRow(c);
  }
  void SetRqiRow(const geo::CellCoord& c, std::vector<QueryId> row) {
    rqi_.SetRow(c, std::move(row));
  }

  // --- Step-phase scans (read-only; safe to run concurrently per shard) ----

  void CollectExpired(Seconds now, std::vector<QueryId>* out) const;
  void CollectLeaseDue(Seconds now, std::vector<QueryId>* out) const;

  // --- Ownership handoff (DESIGN.md §10) -----------------------------------

  // Detaches a focal object and every query bound to it into a handoff
  // message for `to_shard`. RQI rows stay put — they are keyed by cell, not
  // by owner, so a handoff moves table entries only.
  net::ShardHandoff ExtractFocal(ObjectId oid, int to_shard);

  // Installs a handoff's FOT row and SQT entries into this shard,
  // preserving the binding order carried by the message.
  void AdoptFocal(net::ShardHandoff handoff);

  // --- Checkpointing -------------------------------------------------------

  ImageChunk EncodeFotChunk() const;
  ImageChunk EncodeSqtChunk() const;

  // --- Process-transport replication (DESIGN.md §13) -----------------------

  // FNV-1a digest of the RQI slice, row-major over owned cells. The RQI is
  // the delta-replicated table of the process backplane, so agreement on
  // this digest is what a shard daemon's step acks assert.
  uint64_t StateDigest() const;

  // Full-state image for a daemon (re)join: the checkpoint chunks (FOT,
  // SQT — the same per-entry encoding Checkpoint writes) plus the RQI rows
  // of owned cells and the digest above. Appends to *out.
  void EncodeStateSync(std::vector<uint8_t>* out) const;

  // Replaces this shard's state with a sync image produced by
  // EncodeStateSync on a shard with the same id and map. Verifies the
  // embedded digest.
  Status LoadStateSync(const uint8_t* data, size_t size);

  // Drops all state (checkpoint decode starts from empty shards).
  void Clear();

  const Stats& stats() const { return stats_; }
  Stats& stats() { return stats_; }

 private:
  int shard_id_;
  const geo::Grid* grid_;
  const ShardMap* map_;

  std::unordered_map<ObjectId, FotEntry> fot_;
  std::unordered_map<QueryId, SqtEntry> sqt_;
  ReverseQueryIndex rqi_;
  Stats stats_;
};

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_SERVER_SHARD_H_
