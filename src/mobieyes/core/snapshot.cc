#include "mobieyes/core/snapshot.h"

#include <string>
#include <utility>

#include "mobieyes/net/codec.h"

namespace mobieyes::core {

void Snapshot::Append(ObjectId from, const net::Message& message) {
  if (wal.size() >= wal_limit) {
    ++wal_dropped;
    return;
  }
  wal.push_back(WalRecord{from, message});
}

void Snapshot::Install(std::vector<uint8_t> image) {
  checkpoint = std::move(image);
  wal.clear();
  wal_dropped = 0;
}

std::vector<uint8_t> Snapshot::Serialize() const {
  std::vector<uint8_t> out;
  net::ByteWriter w(&out);
  w.U32(kMagic);
  w.U16(kVersion);
  w.U16(0);  // reserved
  w.U64(static_cast<uint64_t>(checkpoint.size()));
  out.insert(out.end(), checkpoint.begin(), checkpoint.end());
  w.U64(static_cast<uint64_t>(wal_limit));
  w.U64(wal_dropped);
  w.U32(static_cast<uint32_t>(wal.size()));
  std::vector<uint8_t> body_scratch;
  std::vector<uint8_t> encoded;
  for (const WalRecord& record : wal) {
    net::MessageCodec::EncodeInto(record.message, &body_scratch, &encoded);
    w.I64(record.from);
    w.U32(record.message.seq);
    w.U32(static_cast<uint32_t>(encoded.size()));
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  return out;
}

Result<Snapshot> Snapshot::Parse(const std::vector<uint8_t>& buffer) {
  // The short-read modes get their own statuses: a zero-length or
  // header-truncated store file (a crash while the image was being written
  // out) would otherwise surface as a misleading "bad magic number" after
  // ByteReader's zero-filled reads.
  if (buffer.empty()) {
    return Status::InvalidArgument("snapshot: empty store file");
  }
  constexpr size_t kHeaderBytes = 4 + 2 + 2 + 8;  // magic,version,rsvd,size
  if (buffer.size() < kHeaderBytes) {
    return Status::InvalidArgument(
        "snapshot: store file truncated at header (" +
        std::to_string(buffer.size()) + " bytes)");
  }
  net::ByteReader r(buffer.data(), buffer.size());
  if (r.U32() != kMagic) {
    return Status::InvalidArgument("snapshot: bad magic number");
  }
  if (r.U16() != kVersion) {
    return Status::InvalidArgument("snapshot: unsupported version");
  }
  r.U16();  // reserved

  Snapshot snapshot;
  uint64_t image_size = r.U64();
  if (!r.ok() || image_size > r.remaining()) {
    return Status::InvalidArgument("snapshot: truncated checkpoint image");
  }
  size_t image_begin = buffer.size() - r.remaining();
  snapshot.checkpoint.assign(buffer.begin() + image_begin,
                             buffer.begin() + image_begin + image_size);
  r.Skip(static_cast<size_t>(image_size));

  snapshot.wal_limit = static_cast<size_t>(r.U64());
  snapshot.wal_dropped = r.U64();
  uint32_t records = r.U32();
  if (!r.ok()) {
    return Status::InvalidArgument("snapshot: truncated WAL header");
  }
  snapshot.wal.reserve(records);
  for (uint32_t k = 0; k < records; ++k) {
    WalRecord record;
    record.from = r.I64();
    uint32_t seq = r.U32();
    uint64_t encoded_size = r.U32();
    if (!r.ok() || encoded_size > r.remaining()) {
      return Status::InvalidArgument("snapshot: truncated WAL record");
    }
    size_t begin = buffer.size() - r.remaining();
    std::vector<uint8_t> encoded(buffer.begin() + begin,
                                 buffer.begin() + begin + encoded_size);
    r.Skip(static_cast<size_t>(encoded_size));
    auto message = net::MessageCodec::Decode(encoded);
    if (!message.ok()) {
      return Status::InvalidArgument("snapshot: corrupt WAL message: " +
                                     message.status().message());
    }
    record.message = std::move(message).value();
    record.message.seq = seq;  // the envelope seq is not part of the wire body
    snapshot.wal.push_back(std::move(record));
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes");
  }
  return snapshot;
}

}  // namespace mobieyes::core
