#include "mobieyes/core/server_shard.h"

#include <algorithm>
#include <utility>

#include "mobieyes/net/codec.h"

namespace mobieyes::core {

namespace {

// Hash-map keys in deterministic order, so two checkpoints of identical
// logical state are byte-identical.
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

ShardMap::ShardMap(const geo::Grid& grid, const ShardingOptions& options)
    : num_shards_(std::max(1, options.num_shards)),
      partition_(options.partition),
      columns_(grid.columns()),
      cell_count_(grid.CellCount()) {
  band_rows_ = (grid.rows() + num_shards_ - 1) / num_shards_;
  if (band_rows_ < 1) band_rows_ = 1;
}

std::vector<int> ShardMap::ShardsIntersecting(
    const geo::CellRange& range) const {
  std::vector<int> shards;
  if (range.empty()) return shards;
  if (num_shards_ == 1) {
    shards.push_back(0);
    return shards;
  }
  if (epoch_ == 0 && partition_ == ShardPartition::kRowBand) {
    // Band ownership is monotone in j, so the row interval maps to a
    // contiguous shard interval.
    int lo = ShardOf({range.i_lo, range.j_lo});
    int hi = ShardOf({range.i_lo, range.j_hi});
    for (int s = lo; s <= hi; ++s) shards.push_back(s);
    return shards;
  }
  // Hash partition (and any rebalanced epoch): a monitoring region is a
  // handful of cells, so walking it is cheap; a huge range is
  // conservatively owned by everyone.
  constexpr int64_t kWalkLimit = 256;
  if (range.CellCount() > kWalkLimit) {
    for (int s = 0; s < num_shards_; ++s) shards.push_back(s);
    return shards;
  }
  std::vector<bool> hit(static_cast<size_t>(num_shards_), false);
  range.ForEach([&](int32_t i, int32_t j) { hit[ShardOf({i, j})] = true; });
  for (int s = 0; s < num_shards_; ++s) {
    if (hit[s]) shards.push_back(s);
  }
  return shards;
}

int ShardMap::SeedOwner(int64_t flat) const {
  if (num_shards_ == 1) return 0;
  geo::CellCoord cell{static_cast<int32_t>(flat % columns_),
                      static_cast<int32_t>(flat / columns_)};
  if (partition_ == ShardPartition::kRowBand) {
    return std::min(cell.j / band_rows_, num_shards_ - 1);
  }
  return static_cast<int>(geo::CellCoordHash{}(cell) %
                          static_cast<size_t>(num_shards_));
}

void ShardMap::AssignmentSnapshot(std::vector<int32_t>* out) const {
  out->resize(static_cast<size_t>(cell_count_));
  if (epoch_ > 0) {
    std::copy(owner_.begin(), owner_.end(), out->begin());
    return;
  }
  for (int64_t f = 0; f < cell_count_; ++f) {
    (*out)[static_cast<size_t>(f)] = static_cast<int32_t>(SeedOwner(f));
  }
}

Status ShardMap::SetAssignment(uint64_t epoch,
                               const std::vector<int32_t>& owners) {
  if (epoch == 0 || owners.empty()) {
    // Seed assignment (possibly with an inherited epoch counter — the N→M
    // restore path, where the stored owner table names shards the new
    // deployment does not have).
    epoch_ = epoch;
    owner_.clear();
    if (epoch_ > 0) {
      owner_.resize(static_cast<size_t>(cell_count_));
      for (int64_t f = 0; f < cell_count_; ++f) {
        owner_[static_cast<size_t>(f)] = static_cast<int32_t>(SeedOwner(f));
      }
    }
    return Status::OK();
  }
  if (owners.size() != static_cast<size_t>(cell_count_)) {
    return Status::InvalidArgument("shard map: assignment size mismatch");
  }
  for (int32_t owner : owners) {
    if (owner < 0 || owner >= num_shards_) {
      return Status::InvalidArgument("shard map: owner out of range");
    }
  }
  epoch_ = epoch;
  owner_ = owners;
  return Status::OK();
}

Status ShardMap::ApplyMoves(uint64_t new_epoch,
                            const std::vector<CellMove>& moves) {
  if (new_epoch <= epoch_) {
    return Status::InvalidArgument("shard map: epoch must advance");
  }
  if (owner_.empty()) {
    owner_.resize(static_cast<size_t>(cell_count_));
    for (int64_t f = 0; f < cell_count_; ++f) {
      owner_[static_cast<size_t>(f)] = static_cast<int32_t>(SeedOwner(f));
    }
  }
  for (const CellMove& move : moves) {
    if (move.flat < 0 || move.flat >= cell_count_ || move.to_shard < 0 ||
        move.to_shard >= num_shards_) {
      return Status::InvalidArgument("shard map: move out of range");
    }
  }
  for (const CellMove& move : moves) {
    owner_[static_cast<size_t>(move.flat)] = move.to_shard;
  }
  epoch_ = new_epoch;
  return Status::OK();
}

void EncodeAssignment(const std::vector<int32_t>& owners,
                      std::vector<uint8_t>* out) {
  net::ByteWriter w(out);
  w.U32(static_cast<uint32_t>(owners.size()));
  // Count the runs first so the run list is length-prefixed.
  uint32_t runs = 0;
  for (size_t k = 0; k < owners.size();) {
    size_t end = k + 1;
    while (end < owners.size() && owners[end] == owners[k]) ++end;
    ++runs;
    k = end;
  }
  w.U32(runs);
  for (size_t k = 0; k < owners.size();) {
    size_t end = k + 1;
    while (end < owners.size() && owners[end] == owners[k]) ++end;
    w.U32(static_cast<uint32_t>(end - k));
    w.I32(owners[k]);
    k = end;
  }
}

Status DecodeAssignment(const uint8_t* data, size_t size, int num_shards,
                        std::vector<int32_t>* owners, size_t* consumed) {
  net::ByteReader r(data, size);
  uint32_t cells = r.U32();
  uint32_t runs = r.U32();
  owners->clear();
  if (r.ok() && runs > cells) r.Fail();
  if (r.ok()) owners->reserve(cells);
  for (uint32_t k = 0; r.ok() && k < runs; ++k) {
    uint32_t len = r.U32();
    int32_t owner = r.I32();
    if (!r.ok()) break;
    if (owner < 0 || owner >= num_shards ||
        owners->size() + len > cells) {
      r.Fail();
      break;
    }
    owners->insert(owners->end(), len, owner);
  }
  if (!r.ok() || owners->size() != cells) {
    owners->clear();
    return Status::InvalidArgument("assignment: malformed owner table");
  }
  if (consumed != nullptr) *consumed = size - r.remaining();
  return Status::OK();
}

FotEntry* ServerShard::FindFocal(ObjectId oid) {
  auto it = fot_.find(oid);
  return it == fot_.end() ? nullptr : &it->second;
}

const FotEntry* ServerShard::FindFocal(ObjectId oid) const {
  auto it = fot_.find(oid);
  return it == fot_.end() ? nullptr : &it->second;
}

SqtEntry* ServerShard::FindQuery(QueryId qid) {
  auto it = sqt_.find(qid);
  return it == sqt_.end() ? nullptr : &it->second;
}

const SqtEntry* ServerShard::FindQuery(QueryId qid) const {
  auto it = sqt_.find(qid);
  return it == sqt_.end() ? nullptr : &it->second;
}

void ServerShard::RqiAdd(QueryId qid, const geo::CellRange& mon_region) {
  mon_region.ForEach([&](int32_t i, int32_t j) {
    geo::CellCoord c{i, j};
    if (OwnsCell(c)) rqi_.AddCell(qid, c);
  });
}

void ServerShard::RqiRemove(QueryId qid, const geo::CellRange& mon_region) {
  mon_region.ForEach([&](int32_t i, int32_t j) {
    geo::CellCoord c{i, j};
    if (OwnsCell(c)) rqi_.RemoveCell(qid, c);
  });
}

void ServerShard::CollectExpired(Seconds now,
                                 std::vector<QueryId>* out) const {
  for (const auto& [qid, entry] : sqt_) {
    if (entry.expires_at <= now) out->push_back(qid);
  }
}

void ServerShard::CollectLeaseDue(Seconds now,
                                  std::vector<QueryId>* out) const {
  for (const auto& [qid, entry] : sqt_) {
    if (entry.lease_renew_at <= now) out->push_back(qid);
  }
}

net::ShardHandoff ServerShard::ExtractFocal(ObjectId oid, int to_shard) {
  net::ShardHandoff handoff;
  handoff.from_shard = shard_id_;
  handoff.to_shard = to_shard;
  handoff.oid = oid;

  auto fot_it = fot_.find(oid);
  if (fot_it == fot_.end()) return handoff;
  FotEntry focal = std::move(fot_it->second);
  fot_.erase(fot_it);

  handoff.state = focal.state;
  handoff.max_speed = focal.max_speed;
  handoff.cell = focal.cell;
  handoff.queries.reserve(focal.queries.size());
  for (QueryId qid : focal.queries) {
    auto sqt_it = sqt_.find(qid);
    if (sqt_it == sqt_.end()) continue;
    SqtEntry entry = std::move(sqt_it->second);
    sqt_.erase(sqt_it);
    net::ShardQueryState q;
    q.qid = entry.qid;
    q.focal_oid = entry.focal_oid;
    q.region = entry.region;
    q.filter_threshold = entry.filter_threshold;
    q.curr_cell = entry.curr_cell;
    q.mon_region = entry.mon_region;
    q.expires_at = entry.expires_at;
    q.lease_renew_at = entry.lease_renew_at;
    q.result.assign(entry.result.begin(), entry.result.end());
    handoff.queries.push_back(std::move(q));
  }
  ++stats_.handoffs_out;
  return handoff;
}

void ServerShard::AdoptFocal(net::ShardHandoff handoff) {
  FotEntry focal;
  focal.state = handoff.state;
  focal.max_speed = handoff.max_speed;
  focal.cell = handoff.cell;
  focal.queries.reserve(handoff.queries.size());
  for (net::ShardQueryState& q : handoff.queries) {
    SqtEntry entry;
    entry.qid = q.qid;
    entry.focal_oid = q.focal_oid;
    entry.region = q.region;
    entry.filter_threshold = q.filter_threshold;
    entry.curr_cell = q.curr_cell;
    entry.mon_region = q.mon_region;
    entry.expires_at = q.expires_at;
    entry.lease_renew_at = q.lease_renew_at;
    entry.result.insert(q.result.begin(), q.result.end());
    focal.queries.push_back(q.qid);
    sqt_.emplace(q.qid, std::move(entry));
  }
  fot_.emplace(handoff.oid, std::move(focal));
  ++stats_.handoffs_in;
}

ServerShard::ImageChunk ServerShard::EncodeFotChunk() const {
  ImageChunk chunk;
  chunk.keys = SortedKeys(fot_);
  chunk.offsets.reserve(chunk.keys.size() + 1);
  net::ByteWriter w(&chunk.bytes);
  chunk.offsets.push_back(0);
  for (ObjectId oid : chunk.keys) {
    const FotEntry& entry = fot_.at(oid);
    w.I64(oid);
    w.State(entry.state);
    w.F64(entry.max_speed);
    w.Cell(entry.cell);
    // The bound-query list keeps its live order: broadcast order during
    // velocity relays follows it.
    w.U32(static_cast<uint32_t>(entry.queries.size()));
    for (QueryId qid : entry.queries) w.I64(qid);
    chunk.offsets.push_back(chunk.bytes.size());
  }
  return chunk;
}

ServerShard::ImageChunk ServerShard::EncodeSqtChunk() const {
  ImageChunk chunk;
  chunk.keys = SortedKeys(sqt_);
  chunk.offsets.reserve(chunk.keys.size() + 1);
  net::ByteWriter w(&chunk.bytes);
  chunk.offsets.push_back(0);
  for (QueryId qid : chunk.keys) {
    const SqtEntry& entry = sqt_.at(qid);
    w.I64(entry.qid);
    w.I64(entry.focal_oid);
    w.Region(entry.region);
    w.F64(entry.filter_threshold);
    w.Cell(entry.curr_cell);
    w.Range(entry.mon_region);
    w.F64(entry.expires_at);
    w.F64(entry.lease_renew_at);
    std::vector<ObjectId> result(entry.result.begin(), entry.result.end());
    std::sort(result.begin(), result.end());
    w.U32(static_cast<uint32_t>(result.size()));
    for (ObjectId oid : result) w.I64(oid);
    chunk.offsets.push_back(chunk.bytes.size());
  }
  return chunk;
}

uint64_t ServerShard::StateDigest() const {
  // FNV-1a over (flat cell index, row length, row entries) of every owned
  // non-empty cell, row-major. Insertion order matters — it is part of the
  // replicated state (broadcast order follows it).
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v) {
    for (int k = 0; k < 8; ++k) {
      h ^= (v >> (8 * k)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (int32_t j = 0; j < grid_->rows(); ++j) {
    for (int32_t i = 0; i < grid_->columns(); ++i) {
      geo::CellCoord c{i, j};
      if (!OwnsCell(c)) continue;
      const std::vector<QueryId>& row = rqi_.QueriesForCell(c);
      if (row.empty()) continue;
      mix(static_cast<uint64_t>(grid_->FlatIndex(c)));
      mix(row.size());
      for (QueryId qid : row) mix(static_cast<uint64_t>(qid));
    }
  }
  return h;
}

void ServerShard::EncodeStateSync(std::vector<uint8_t>* out) const {
  net::ByteWriter w(out);
  ImageChunk fot = EncodeFotChunk();
  w.U32(static_cast<uint32_t>(fot.keys.size()));
  out->insert(out->end(), fot.bytes.begin(), fot.bytes.end());
  ImageChunk sqt = EncodeSqtChunk();
  w.U32(static_cast<uint32_t>(sqt.keys.size()));
  out->insert(out->end(), sqt.bytes.begin(), sqt.bytes.end());

  uint32_t row_count = 0;
  std::vector<uint8_t> rows;
  net::ByteWriter rw(&rows);
  for (int32_t j = 0; j < grid_->rows(); ++j) {
    for (int32_t i = 0; i < grid_->columns(); ++i) {
      geo::CellCoord c{i, j};
      if (!OwnsCell(c)) continue;
      const std::vector<QueryId>& row = rqi_.QueriesForCell(c);
      if (row.empty()) continue;
      rw.Cell(c);
      rw.U32(static_cast<uint32_t>(row.size()));
      for (QueryId qid : row) rw.I64(qid);
      ++row_count;
    }
  }
  w.U32(row_count);
  out->insert(out->end(), rows.begin(), rows.end());
  w.U64(StateDigest());
}

Status ServerShard::LoadStateSync(const uint8_t* data, size_t size) {
  net::ByteReader r(data, size);
  Clear();
  uint32_t fot_count = r.U32();
  for (uint32_t k = 0; r.ok() && k < fot_count; ++k) {
    ObjectId oid = r.I64();
    FotEntry entry;
    entry.state = r.State();
    entry.max_speed = r.F64();
    entry.cell = r.Cell();
    uint32_t nq = r.U32();
    if (nq > r.remaining() / 8) {
      r.Fail();
      break;
    }
    entry.queries.reserve(nq);
    for (uint32_t q = 0; q < nq; ++q) entry.queries.push_back(r.I64());
    if (r.ok()) fot_.emplace(oid, std::move(entry));
  }
  uint32_t sqt_count = r.U32();
  for (uint32_t k = 0; r.ok() && k < sqt_count; ++k) {
    SqtEntry entry;
    entry.qid = r.I64();
    entry.focal_oid = r.I64();
    entry.region = r.Region();
    entry.filter_threshold = r.F64();
    entry.curr_cell = r.Cell();
    entry.mon_region = r.Range();
    entry.expires_at = r.F64();
    entry.lease_renew_at = r.F64();
    uint32_t n = r.U32();
    if (n > r.remaining() / 8) {
      r.Fail();
      break;
    }
    for (uint32_t q = 0; q < n; ++q) entry.result.insert(r.I64());
    if (r.ok()) sqt_.emplace(entry.qid, std::move(entry));
  }
  uint32_t row_count = r.U32();
  for (uint32_t k = 0; r.ok() && k < row_count; ++k) {
    geo::CellCoord c = r.Cell();
    uint32_t n = r.U32();
    if (n > r.remaining() / 8 || !grid_->IsValid(c)) {
      r.Fail();
      break;
    }
    for (uint32_t q = 0; q < n; ++q) rqi_.AddCell(r.I64(), c);
  }
  uint64_t digest = r.U64();
  if (!r.ok() || r.remaining() != 0) {
    Clear();
    return Status::InvalidArgument("shard sync: malformed image");
  }
  if (digest != StateDigest()) {
    Clear();
    return Status::InvalidArgument("shard sync: digest mismatch");
  }
  return Status::OK();
}

void ServerShard::Clear() {
  fot_.clear();
  sqt_.clear();
  rqi_ = ReverseQueryIndex(*grid_);
}

}  // namespace mobieyes::core
