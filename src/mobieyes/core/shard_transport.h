#ifndef MOBIEYES_CORE_SHARD_TRANSPORT_H_
#define MOBIEYES_CORE_SHARD_TRANSPORT_H_

#include <vector>

#include <cstdint>

#include "mobieyes/common/ids.h"
#include "mobieyes/core/server_shard.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/net/message.h"

namespace mobieyes::core {

// Tap the ShardRouter drives when its shards are replicated out of process
// (DESIGN.md §13). The router stays the single authoritative dispatcher —
// the transport observes every state-changing shard op so it can mirror it
// to the shard's daemon, and reports liveness so the router can run
// degraded (defer uplinks) while a daemon is down.
//
// All hooks fire on the dispatch thread, outside WAL replay (a replayed op
// was already mirrored by the pre-crash run).
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  // False while `shard`'s daemon is down (crashed, restarting, resyncing).
  // Uplinks whose ingress shard is unavailable are deferred by the router.
  virtual bool ShardAvailable(int shard) const = 0;

  // An RQI registration (add = true) or removal on `shard`'s slice.
  virtual void OnRqiOp(bool add, int shard, QueryId qid,
                       const geo::CellRange& mon_region) = 0;

  // A focal-ownership migration: `message` is the encoded kShardHandoff.
  // Fires before the router applies the adopt, with both shards' state
  // still pre-handoff.
  virtual void OnHandoff(int from_shard, int to_shard, ObjectId oid,
                         const net::Message& message) = 0;

  // A partition epoch advance (DESIGN.md §15): the router applied `moves`
  // and is now at `epoch`. Fires at a step boundary, before the per-cell
  // RQI row moves and focal handoffs of the same rebalance, so mirrors
  // re-home ownership before state migrates under the new assignment.
  virtual void OnPartitionUpdate(uint64_t epoch,
                                 const std::vector<CellMove>& moves) {
    (void)epoch;
    (void)moves;
  }

  // A whole RQI row moving between shards during a rebalance: `from_shard`
  // drops its row for `cell`, `to_shard` installs `row` verbatim (order
  // preserved — row order drives broadcast order).
  virtual void OnRqiRowMove(int from_shard, int to_shard,
                            const geo::CellCoord& cell,
                            const std::vector<QueryId>& row) {
    (void)from_shard;
    (void)to_shard;
    (void)cell;
    (void)row;
  }

  // Authority mode (DESIGN.md §14): execute the RQI row read for `cell` on
  // `shard`'s authoritative executor, filling *out with the monitoring
  // query ids in row order. Returns false when the transport is not
  // authoritative for the shard right now (replica mode, daemon down or
  // resyncing) — the router then serves the scan from its warm local
  // mirror, which is the same-step failover path.
  virtual bool AuthorityScan(int shard, const geo::CellCoord& cell,
                             std::vector<QueryId>* out) {
    (void)shard;
    (void)cell;
    (void)out;
    return false;
  }
};

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_SHARD_TRANSPORT_H_
