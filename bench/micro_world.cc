// Microbenchmarks for the mobility layer (google-benchmark): World::Step
// (motion + velocity redraws + cell-index maintenance) and the visitor
// iteration primitives, at 1k/10k/100k/1M objects. These are the per-step
// hot paths every simulation mode sits on top of; regressions here slow the
// entire bench suite.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/mobility/world.h"

#ifndef NDEBUG
// Debug builds count global allocations so the steady-state-zero claim for
// World::Step is asserted, not assumed (it would be invisible in a timing
// run). Release builds keep the default operators: the counter itself would
// perturb what the bench measures.
namespace {
uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#endif  // NDEBUG

namespace {

using mobieyes::ObjectId;
using mobieyes::Rng;
using mobieyes::geo::Circle;
using mobieyes::geo::Grid;
using mobieyes::geo::Point;
using mobieyes::geo::Rect;
using mobieyes::mobility::ObjectState;
using mobieyes::mobility::World;

// Table 1 scale: 100000 sq miles, alpha = 5, speeds up to ~250 mph.
constexpr double kSide = 316.227766;

Grid MakeGrid() { return *Grid::Make(Rect{0, 0, kSide, kSide}, 5.0); }

World MakeWorld(const Grid& grid, int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ObjectState> objects;
  objects.reserve(n);
  for (int k = 0; k < n; ++k) {
    ObjectState object;
    object.oid = static_cast<ObjectId>(k);
    object.pos = Point{rng.NextDouble(0, kSide), rng.NextDouble(0, kSide)};
    object.max_speed = rng.NextDouble(0.01, 0.07);  // ~36..250 mph
    object.vel = {rng.NextDouble(-0.05, 0.05), rng.NextDouble(-0.05, 0.05)};
    objects.push_back(object);
  }
  return *World::Make(grid, std::move(objects));
}

void BM_WorldStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Grid grid = MakeGrid();
  World world = MakeWorld(grid, n, 1);
  Rng rng(2);
  world.Step(30.0, n / 10, rng);  // warm the span-rebuild scratch
#ifndef NDEBUG
  // The SoA step must be allocation-free at steady state (ISSUE S2): probe
  // one dedicated step outside the timed loop, where no harness-internal
  // heap traffic can pollute the count.
  const uint64_t allocs_before = g_alloc_count;
  world.Step(30.0, n / 10, rng);
  if (g_alloc_count != allocs_before) {
    state.SkipWithError("World::Step allocated at steady state");
  }
#endif
  for (auto _ : state) {
    world.Step(30.0, n / 10, rng);  // nmo/no = 10% as in Table 1
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WorldStep)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

void BM_ForEachObjectInCircle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Grid grid = MakeGrid();
  World world = MakeWorld(grid, n, 3);
  Rng rng(4);
  for (auto _ : state) {
    Circle circle{Point{rng.NextDouble(20, kSide - 20),
                        rng.NextDouble(20, kSide - 20)},
                  10.0};
    uint64_t hits = 0;
    world.ForEachObjectInCircle(circle, [&](ObjectId) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForEachObjectInCircle)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_ForEachObjectUnderCoverage(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Grid grid = MakeGrid();
  World world = MakeWorld(grid, n, 5);
  Rng rng(6);
  for (auto _ : state) {
    Circle circle{Point{rng.NextDouble(20, kSide - 20),
                        rng.NextDouble(20, kSide - 20)},
                  10.0};
    uint64_t hits = 0;
    world.ForEachObjectUnderCoverage(circle, [&](ObjectId) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForEachObjectUnderCoverage)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
