// Figure 4: effect of the grid cell size alpha on messaging cost. Total
// messages per second on the wireless medium for MobiEyes (eager
// propagation) as a function of alpha, for several query counts. The paper
// finds a U-shape with the sweet spot around alpha in [4, 6].

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("fig04_messaging_alpha", argc, argv);
  std::vector<double> alphas = {0.5, 1, 2, 4, 6, 8, 12, 16};
  std::vector<double> query_counts = {100, 400, 1000};
  std::vector<Series> series;
  for (double nmq : query_counts) {
    series.push_back({"nmq=" + std::to_string(static_cast<int>(nmq)), {}});
  }
  RunOptions options;
  options.steps = 8;

  std::vector<SweepJob> jobs;
  for (double alpha : alphas) {
    for (double nmq : query_counts) {
      SweepJob job;
      job.params.alpha = alpha;
      job.params.num_queries = static_cast<int>(nmq);
      job.options = options;
      job.label = "fig04 alpha=" + std::to_string(alpha) +
                  " nmq=" + std::to_string(job.params.num_queries);
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < alphas.size(); ++row) {
    for (size_t k = 0; k < query_counts.size(); ++k) {
      series[k].values.push_back(results[cell++].MessagesPerSecond());
    }
  }
  PrintTable("Fig 4: messages/second vs alpha (MobiEyes EQP)", "alpha",
             alphas, series);
  return FinishBench();
}
