// Crash recovery: oracle agreement through a mid-run server crash, for the
// hardened protocol with checkpoint/WAL restore (DESIGN.md §9). Every cell
// kills the server at the same step and restores it after a fixed downtime;
// the sweep varies the checkpoint stride under a deliberately small WAL
// budget, so sparser checkpoints restore staler state and take longer to
// reconverge. A second sweep repeats the crash under symmetric message loss.
//
// Reported per cell:
//   - the per-step oracle agreement timeline (the recovery curve),
//   - time-to-reconverge: measured steps from the restore until agreement
//     first reaches kConvergedAgreement,
//   - WAL records replayed / lost to overflow and checkpoints taken.
//
// The cells step one simulated step at a time (Simulation::Run(1) +
// CurrentAccuracy), which RunSweep cannot express, so this bench drives the
// simulations directly; --json still records every table through
// PrintTable/FinishBench.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mobieyes/core/shard_supervisor.h"

using namespace mobieyes;         // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

namespace {

// Agreement at which a run counts as reconverged (the CI smoke gate).
constexpr double kConvergedAgreement = 0.95;

constexpr int kWarmupSteps = 2;
constexpr int kMeasuredSteps = 56;
// Crash/restore schedule on the fault clock (counts warmup steps too).
// 15 is deliberately not one past a common checkpoint boundary: stride 1
// checkpoints at the end of step 14 (fresh restore), stride 2 at the end of
// 13, stride 4 at the end of 11, stride 8 at the end of 7 — so the restored
// state gets monotonically staler with the stride.
constexpr int64_t kCrashStep = 15;       // measured step 13
constexpr int kRecoverySteps = 4;        // server dark for 4 steps
// Small on purpose: strides beyond 1 accumulate more uplinks than this
// between checkpoints, so the WAL overflows and the restore is stale.
constexpr size_t kWalLimit = 64;

struct CrashCell {
  std::string label;
  double drop = 0.0;
  int checkpoint_stride = 0;
  bool crash = true;
  // kill -9 of a live shard daemon instead of the whole server (process
  // transport, DESIGN.md §13): the shard degrades until the supervisor
  // respawns and resyncs it, so the recovery window is the respawn backoff
  // rather than kRecoverySteps.
  bool daemon_kill = false;
  int recovery_steps = kRecoverySteps;
};

struct CrashResult {
  std::vector<double> agreement;  // one row per measured step
  sim::RunMetrics metrics;
  // Measured steps from the restore step until agreement first reaches
  // kConvergedAgreement (0 = converged immediately; capped at the number of
  // post-restore steps when it never does).
  int time_to_reconverge = 0;
  double final_agreement = 0.0;
  double min_post_restore_agreement = 1.0;
};

sim::SimulationConfig MakeConfig(const CrashCell& cell) {
  sim::SimulationConfig config;
  config.params.num_objects = 1500;
  config.params.num_queries = 150;
  config.params.velocity_changes_per_step = 150;
  config.mode = sim::SimMode::kMobiEyesEager;
  config.measure_error = true;
  config.warmup_steps = kWarmupSteps;
  config.mobieyes =
      core::HardenedOptions(config.mobieyes, config.params.time_step);
  config.checkpoint_stride = cell.checkpoint_stride;
  config.wal_limit = kWalLimit;
  if (cell.drop > 0.0) {
    config.faults.uplink_drop_rate = cell.drop;
    config.faults.downlink_drop_rate = cell.drop;
  }
  if (cell.crash) {
    config.faults.server_crash_step = kCrashStep;
    config.faults.server_recovery_steps = kRecoverySteps;
  }
  if (cell.daemon_kill) {
    config.mobieyes.sharding.num_shards = 4;
    config.shard_transport = sim::SimulationConfig::ShardTransport::kProcess;
    config.shard_kill_step = kCrashStep;
    config.shard_kill_index = 1;
  }
  return config;
}

CrashResult RunCrashCell(const CrashCell& cell) {
  Progress(cell.label);
  CrashResult result;
  auto simulation = sim::Simulation::Make(MakeConfig(cell));
  if (!simulation.ok()) {
    std::fprintf(stderr, "simulation setup failed: %s\n",
                 simulation.status().ToString().c_str());
    return result;
  }
  for (int step = 0; step < kMeasuredSteps; ++step) {
    (*simulation)->Run(1);
    result.agreement.push_back((*simulation)->CurrentAccuracy().agreement);
  }
  result.metrics = (*simulation)->metrics();
  result.final_agreement = result.agreement.back();

  // The restore lands at the start of measured step
  // kCrashStep - warmup + recovery; that step's agreement already includes a
  // full step of post-restore traffic.
  const int restore_step =
      static_cast<int>(kCrashStep) - kWarmupSteps + cell.recovery_steps;
  result.time_to_reconverge = kMeasuredSteps - restore_step;
  for (int step = restore_step; step < kMeasuredSteps; ++step) {
    double agreement = result.agreement[static_cast<size_t>(step)];
    if (agreement < result.min_post_restore_agreement) {
      result.min_post_restore_agreement = agreement;
    }
  }
  for (int step = restore_step; step < kMeasuredSteps; ++step) {
    if (result.agreement[static_cast<size_t>(step)] >= kConvergedAgreement) {
      result.time_to_reconverge = step - restore_step;
      break;
    }
  }
  return result;
}

void PrintRecoveryTable(const std::string& title,
                        const std::vector<double>& xs,
                        const std::vector<CrashResult>& results) {
  std::vector<Series> series = {
      {"reconverge steps", {}}, {"final agree", {}},  {"min post agree", {}},
      {"wal replayed", {}},     {"wal dropped", {}},  {"checkpoints", {}},
  };
  for (const CrashResult& r : results) {
    series[0].values.push_back(static_cast<double>(r.time_to_reconverge));
    series[1].values.push_back(r.final_agreement);
    series[2].values.push_back(r.min_post_restore_agreement);
    series[3].values.push_back(
        static_cast<double>(r.metrics.wal_records_replayed));
    series[4].values.push_back(
        static_cast<double>(r.metrics.wal_records_dropped));
    series[5].values.push_back(
        static_cast<double>(r.metrics.checkpoints_taken));
  }
  PrintTable(title, "x", xs, series);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench("crash_sweep", argc, argv);

  // Sweep 1: checkpoint stride at drop 0, plus an uncrashed control. The
  // largest stride still checkpoints at least once mid-run; a stride larger
  // than the crash step degenerates to restoring the pristine baseline image,
  // whose install-time result sets are exact and skew the comparison.
  std::vector<int> strides = {1, 2, 4, 8};
  std::vector<CrashResult> stride_results;
  for (int stride : strides) {
    CrashCell cell;
    cell.label = "crash stride=" + std::to_string(stride) + " drop=0";
    cell.checkpoint_stride = stride;
    stride_results.push_back(RunCrashCell(cell));
  }
  CrashCell control;
  control.label = "control (no crash) drop=0";
  control.checkpoint_stride = 1;
  control.crash = false;
  CrashResult control_result = RunCrashCell(control);

  // Sweep 2: the same crash under message loss, stride 4.
  std::vector<double> drops = {0.0, 0.05, 0.1};
  std::vector<CrashResult> drop_results;
  for (double drop : drops) {
    CrashCell cell;
    cell.label = "crash stride=4 drop=" + std::to_string(drop);
    cell.checkpoint_stride = 4;
    cell.drop = drop;
    drop_results.push_back(RunCrashCell(cell));
  }

  // Agreement timeline: the recovery curves, one series per stride plus the
  // uncrashed control.
  std::vector<double> steps;
  for (int step = 0; step < kMeasuredSteps; ++step) {
    steps.push_back(static_cast<double>(step));
  }
  std::vector<Series> timeline;
  for (size_t k = 0; k < strides.size(); ++k) {
    timeline.push_back(Series{"stride " + std::to_string(strides[k]),
                              stride_results[k].agreement});
  }
  timeline.push_back(Series{"no crash", control_result.agreement});
  PrintTable("Crash recovery: agreement timeline (drop 0)", "step", steps,
             timeline);

  std::vector<double> stride_xs(strides.begin(), strides.end());
  PrintRecoveryTable("Crash recovery: checkpoint stride (drop 0)", stride_xs,
                     stride_results);
  PrintRecoveryTable("Crash recovery: message loss (stride 4)", drops,
                     drop_results);

  // Sweep 3: kill -9 of a live shard daemon under the process transport
  // (DESIGN.md §13). The server stays up; the supervisor detects the dead
  // daemon, queues its uplinks (degraded mode), respawns it and resyncs
  // from the checkpoint chunk plus the frame log. Skipped when the daemon
  // binary is not discoverable (e.g. a stripped install tree).
  if (core::ShardSupervisor::FindShardd("").empty()) {
    std::fprintf(stderr,
                 "[crash_sweep] mobieyes_shardd not found; skipping the "
                 "daemon kill -9 sweep\n");
  } else {
    std::vector<int> kill_strides = {1, 4};
    std::vector<CrashResult> kill_results;
    std::vector<double> kill_xs;
    for (int stride : kill_strides) {
      CrashCell cell;
      cell.label = "daemon kill -9 shard=1 stride=" + std::to_string(stride);
      cell.checkpoint_stride = stride;
      cell.crash = false;
      cell.daemon_kill = true;
      // The respawn backoff is two virtual steps by default; the rejoin
      // resync lands within the same step, so the recovery window is the
      // backoff, not kRecoverySteps.
      cell.recovery_steps = 2;
      kill_results.push_back(RunCrashCell(cell));
      kill_xs.push_back(static_cast<double>(stride));
    }
    PrintRecoveryTable("Crash recovery: shard daemon kill -9 (stride sweep)",
                       kill_xs, kill_results);
    std::vector<Series> kill_extra = {
        {"daemon restarts", {}}, {"syncs replayed", {}},
        {"uplinks deferred", {}}, {"uplinks dropped", {}},
    };
    for (const CrashResult& r : kill_results) {
      kill_extra[0].values.push_back(
          static_cast<double>(r.metrics.shard_restarts));
      kill_extra[1].values.push_back(
          static_cast<double>(r.metrics.backplane_replayed_frames));
      kill_extra[2].values.push_back(
          static_cast<double>(r.metrics.uplinks_deferred));
      kill_extra[3].values.push_back(
          static_cast<double>(r.metrics.uplinks_dropped));
    }
    PrintTable("Crash recovery: daemon kill -9 backplane detail", "stride",
               kill_xs, kill_extra);
  }
  return FinishBench();
}
