// Microbenchmarks for the observability layer's overhead. Three questions:
//
//  1. What does a simulation step cost with observability fully off? This
//     must match the pre-obs baseline (the BENCH_parallel_sweep.json
//     numbers) — the disabled path is a null-pointer test per span and one
//     bool test per network send.
//  2. What does turning metrics / tracing / sampling on cost end to end?
//  3. What do the primitives cost in isolation (disabled span, enabled
//     span, counter increment, histogram observe)?
//
// Run with --benchmark_format=json to regenerate BENCH_observability.json.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "mobieyes/obs/heatmap.h"
#include "mobieyes/obs/lifecycle.h"
#include "mobieyes/obs/metrics_registry.h"
#include "mobieyes/obs/trace_recorder.h"
#include "mobieyes/sim/simulation.h"

namespace {

using mobieyes::obs::Counter;
using mobieyes::obs::ExponentialBounds;
using mobieyes::obs::Histogram;
using mobieyes::obs::MetricsRegistry;
using mobieyes::obs::TraceRecorder;
using mobieyes::sim::ObservabilityOptions;
using mobieyes::sim::SimMode;
using mobieyes::sim::Simulation;
using mobieyes::sim::SimulationConfig;

SimulationConfig SmallConfig(const ObservabilityOptions& obs) {
  SimulationConfig config;
  config.mode = SimMode::kMobiEyesEager;
  config.params.num_objects = 2000;
  config.params.num_queries = 200;
  config.params.velocity_changes_per_step = 200;
  config.params.seed = 11;
  config.warmup_steps = 1;
  config.measure_error = false;
  config.obs = obs;
  return config;
}

// One full EQP simulation step (2k objects), observability varied by the
// benchmark arg: 0 = off, 1 = metrics+sampler, 2 = trace, 3 = everything
// first-generation, 4 = heatmap+lifecycle, 5 = everything.
void BM_SimulationStep(benchmark::State& state) {
  ObservabilityOptions obs;
  const bool metrics = state.range(0) == 1 || state.range(0) >= 3;
  const bool trace = state.range(0) == 2 || state.range(0) == 3 ||
                     state.range(0) == 5;
  const bool spatial = state.range(0) >= 4;
  obs.enable_metrics = metrics;
  obs.sample_stride = metrics ? 1 : 0;
  obs.enable_trace = trace;
  obs.enable_heatmap = spatial;
  obs.enable_lifecycle = spatial;
  auto simulation = Simulation::Make(SmallConfig(obs));
  if (!simulation.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    (*simulation)->Run(1);
    if (trace) (*simulation)->trace_recorder()->Clear();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
  state.SetLabel(state.range(0) == 0   ? "obs off"
                 : state.range(0) == 1 ? "metrics+sampler"
                 : state.range(0) == 2 ? "trace"
                 : state.range(0) == 3 ? "metrics+sampler+trace"
                 : state.range(0) == 4 ? "metrics+heatmap+lifecycle"
                                       : "all on");
}
BENCHMARK(BM_SimulationStep)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMicrosecond);

// The runtime-disabled span: one null test on construction and one on
// destruction. This is what every instrumented scope pays when tracing is
// off.
void BM_TraceSpanDisabled(benchmark::State& state) {
  TraceRecorder* recorder = nullptr;
  benchmark::DoNotOptimize(recorder);
  for (auto _ : state) {
    TRACE_SPAN(recorder, "micro.disabled");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanDisabled);

// The enabled span: two steady_clock reads plus one vector push_back.
void BM_TraceSpanEnabled(benchmark::State& state) {
  TraceRecorder recorder;
  for (auto _ : state) {
    {
      TRACE_SPAN(&recorder, "micro.enabled");
      benchmark::ClobberMemory();
    }
    if (recorder.events().size() >= 65536) recorder.Clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanEnabled);

// A counter bump through a pre-resolved handle (the network send path).
void BM_CounterIncrement(benchmark::State& state) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("micro.counter");
  for (auto _ : state) {
    counter->Increment();
    benchmark::DoNotOptimize(*counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncrement);

// A histogram observation: linear bucket scan over 12 bounds.
void BM_HistogramObserve(benchmark::State& state) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram(
      "micro.histogram", ExponentialBounds(32.0, 2.0, 12));
  uint64_t value = 1;
  for (auto _ : state) {
    histogram->Observe(static_cast<double>(value));
    value = value * 1664525 + 1013904223;  // LCG, exercises all buckets
    value &= 0xFFFF;
    benchmark::DoNotOptimize(*histogram);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

// A heat-map charge: one flat-index computation plus an integer add (the
// per-uplink cost on the router hot path when heat maps are on).
void BM_HeatMapAdd(benchmark::State& state) {
  mobieyes::obs::HeatMap map(64, 64);
  uint64_t k = 0;
  for (auto _ : state) {
    map.Add(mobieyes::obs::HeatMap::kUplinks,
            static_cast<int32_t>(k % 64),
            static_cast<int32_t>((k / 64) % 64));
    ++k;
    benchmark::DoNotOptimize(map);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeatMapAdd);

// One per-step shard-window merge of a 64x64 map (all channels): what the
// simulation pays per shard per step to keep the global map layout-
// invariant.
void BM_HeatMapMergeWindow(benchmark::State& state) {
  mobieyes::obs::HeatMap global(64, 64);
  mobieyes::obs::HeatMap shard(64, 64);
  for (auto _ : state) {
    state.PauseTiming();
    for (int c = 0; c < 256; ++c) {
      shard.Add(mobieyes::obs::HeatMap::kUplinks, c % 64, c / 64);
    }
    state.ResumeTiming();
    global.MergeWindowFrom(shard);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeatMapMergeWindow)->Unit(benchmark::kMicrosecond);

// A full lifecycle round: stamp (hash-map insert) plus resolve (find,
// erase, bucket scan) — the per-tracked-message cost.
void BM_LifecycleStampResolve(benchmark::State& state) {
  mobieyes::obs::LifecycleTracker tracker;
  uint64_t key = 0;
  for (auto _ : state) {
    tracker.Stamp(mobieyes::obs::LifecycleTracker::kUplinkRoundTrip, key);
    tracker.ResolveIfPending(mobieyes::obs::LifecycleTracker::kUplinkRoundTrip,
                             key);
    key = (key + 1) & 0xFFFF;
    benchmark::DoNotOptimize(tracker);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LifecycleStampResolve);

}  // namespace

BENCHMARK_MAIN();
