// Figure 1: impact of distributed query processing on server load.
// Server load (seconds of server-side processing per time step, log scale in
// the paper) as a function of the number of queries, for the centralized
// object-index and query-index baselines and MobiEyes with eager and lazy
// query propagation.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> query_counts = {100, 250, 500, 750, 1000};
  std::vector<Series> series = {{"ObjectIndex", {}},
                                {"QueryIndex", {}},
                                {"MobiEyes-EQP", {}},
                                {"MobiEyes-LQP", {}}};
  RunOptions options;
  options.steps = 8;

  for (double nmq : query_counts) {
    sim::SimulationParams params;
    params.num_queries = static_cast<int>(nmq);
    Progress("fig01 nmq=" + std::to_string(params.num_queries));
    series[0].values.push_back(
        RunMode(params, sim::SimMode::kObjectIndex, options)
            .ServerLoadPerStep());
    series[1].values.push_back(
        RunMode(params, sim::SimMode::kQueryIndex, options)
            .ServerLoadPerStep());
    series[2].values.push_back(
        RunMode(params, sim::SimMode::kMobiEyesEager, options)
            .ServerLoadPerStep());
    series[3].values.push_back(
        RunMode(params, sim::SimMode::kMobiEyesLazy, options)
            .ServerLoadPerStep());
  }
  PrintTable("Fig 1: server load (s/step) vs number of queries",
             "num_queries", query_counts, series);
  return 0;
}
