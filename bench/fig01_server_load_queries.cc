// Figure 1: impact of distributed query processing on server load.
// Server load (seconds of server-side processing per time step, log scale in
// the paper) as a function of the number of queries, for the centralized
// object-index and query-index baselines and MobiEyes with eager and lazy
// query propagation.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("fig01_server_load_queries", argc, argv);
  std::vector<double> query_counts = {100, 250, 500, 750, 1000};
  std::vector<sim::SimMode> modes = {
      sim::SimMode::kObjectIndex, sim::SimMode::kQueryIndex,
      sim::SimMode::kMobiEyesEager, sim::SimMode::kMobiEyesLazy};
  std::vector<Series> series = {{"ObjectIndex", {}},
                                {"QueryIndex", {}},
                                {"MobiEyes-EQP", {}},
                                {"MobiEyes-LQP", {}}};
  RunOptions options;
  options.steps = 8;

  std::vector<SweepJob> jobs;
  for (double nmq : query_counts) {
    for (sim::SimMode mode : modes) {
      SweepJob job;
      job.params.num_queries = static_cast<int>(nmq);
      job.mode = mode;
      job.options = options;
      job.label = "fig01 nmq=" + std::to_string(job.params.num_queries) +
                  " " + sim::SimModeName(mode);
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < query_counts.size(); ++row) {
    for (size_t s = 0; s < series.size(); ++s) {
      series[s].values.push_back(results[cell++].ServerLoadPerStep());
    }
  }
  PrintTable("Fig 1: server load (s/step) vs number of queries",
             "num_queries", query_counts, series);
  return FinishBench();
}
