// Figure 5: effect of the number of objects on messaging cost. Messages per
// second for the naive and central-optimal reporting schemes and MobiEyes
// EQP/LQP as the object population grows; the ratio nmo/no is held at its
// default (10%) as in the paper.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("fig05_messaging_objects", argc, argv);
  std::vector<double> object_counts = {1000, 2500, 5000, 7500, 10000};
  std::vector<double> query_counts = {100, 1000};
  std::vector<sim::SimMode> modes = {
      sim::SimMode::kNaive, sim::SimMode::kCentralOptimal,
      sim::SimMode::kMobiEyesEager, sim::SimMode::kMobiEyesLazy};
  std::vector<Series> series;
  for (double nmq : query_counts) {
    std::string suffix = " (nmq=" + std::to_string(static_cast<int>(nmq)) + ")";
    series.push_back({"Naive" + suffix, {}});
    series.push_back({"CentralOpt" + suffix, {}});
    series.push_back({"EQP" + suffix, {}});
    series.push_back({"LQP" + suffix, {}});
  }
  RunOptions options;
  options.steps = 8;

  std::vector<SweepJob> jobs;
  for (double no : object_counts) {
    for (double nmq : query_counts) {
      for (sim::SimMode mode : modes) {
        SweepJob job;
        job.params.num_objects = static_cast<int>(no);
        job.params.num_queries = static_cast<int>(nmq);
        // Keep nmo/no constant at the default ratio 1000/10000.
        job.params.velocity_changes_per_step = static_cast<int>(no * 0.1);
        job.mode = mode;
        job.options = options;
        job.label = "fig05 no=" + std::to_string(job.params.num_objects) +
                    " nmq=" + std::to_string(job.params.num_queries) + " " +
                    sim::SimModeName(mode);
        jobs.push_back(job);
      }
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < object_counts.size(); ++row) {
    for (size_t column = 0; column < series.size(); ++column) {
      series[column].values.push_back(results[cell++].MessagesPerSecond());
    }
  }
  PrintTable("Fig 5: messages/second vs number of objects", "num_objects",
             object_counts, series);
  return FinishBench();
}
