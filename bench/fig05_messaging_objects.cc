// Figure 5: effect of the number of objects on messaging cost. Messages per
// second for the naive and central-optimal reporting schemes and MobiEyes
// EQP/LQP as the object population grows; the ratio nmo/no is held at its
// default (10%) as in the paper.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> object_counts = {1000, 2500, 5000, 7500, 10000};
  std::vector<double> query_counts = {100, 1000};
  std::vector<Series> series;
  for (double nmq : query_counts) {
    std::string suffix = " (nmq=" + std::to_string(static_cast<int>(nmq)) + ")";
    series.push_back({"Naive" + suffix, {}});
    series.push_back({"CentralOpt" + suffix, {}});
    series.push_back({"EQP" + suffix, {}});
    series.push_back({"LQP" + suffix, {}});
  }
  RunOptions options;
  options.steps = 8;

  for (double no : object_counts) {
    size_t column = 0;
    for (double nmq : query_counts) {
      sim::SimulationParams params;
      params.num_objects = static_cast<int>(no);
      params.num_queries = static_cast<int>(nmq);
      // Keep nmo/no constant at the default ratio 1000/10000.
      params.velocity_changes_per_step = static_cast<int>(no * 0.1);
      Progress("fig05 no=" + std::to_string(params.num_objects) +
               " nmq=" + std::to_string(params.num_queries));
      series[column++].values.push_back(
          RunMode(params, sim::SimMode::kNaive, options)
              .MessagesPerSecond());
      series[column++].values.push_back(
          RunMode(params, sim::SimMode::kCentralOptimal, options)
              .MessagesPerSecond());
      series[column++].values.push_back(
          RunMode(params, sim::SimMode::kMobiEyesEager, options)
              .MessagesPerSecond());
      series[column++].values.push_back(
          RunMode(params, sim::SimMode::kMobiEyesLazy, options)
              .MessagesPerSecond());
    }
  }
  PrintTable("Fig 5: messages/second vs number of objects", "num_objects",
             object_counts, series);
  return 0;
}
