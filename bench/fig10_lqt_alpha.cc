// Figure 10: effect of alpha on the average number of queries a moving
// object evaluates per time step (the average LQT size). Grows roughly
// exponentially with alpha since monitoring regions scale with cell area.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("fig10_lqt_alpha", argc, argv);
  std::vector<double> alphas = {1, 2, 4, 8, 16};
  std::vector<double> query_counts = {100, 400, 1000};
  std::vector<Series> series;
  for (double nmq : query_counts) {
    series.push_back({"nmq=" + std::to_string(static_cast<int>(nmq)), {}});
  }
  RunOptions options;
  options.steps = 8;

  std::vector<SweepJob> jobs;
  for (double alpha : alphas) {
    for (double nmq : query_counts) {
      SweepJob job;
      job.params.alpha = alpha;
      job.params.num_queries = static_cast<int>(nmq);
      job.options = options;
      job.label = "fig10 alpha=" + std::to_string(alpha) +
                  " nmq=" + std::to_string(job.params.num_queries);
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < alphas.size(); ++row) {
    for (size_t k = 0; k < query_counts.size(); ++k) {
      series[k].values.push_back(results[cell++].AverageLqtSize());
    }
  }
  PrintTable("Fig 10: average LQT size vs alpha", "alpha", alphas, series);
  return FinishBench();
}
