// Figure 10: effect of alpha on the average number of queries a moving
// object evaluates per time step (the average LQT size). Grows roughly
// exponentially with alpha since monitoring regions scale with cell area.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> alphas = {1, 2, 4, 8, 16};
  std::vector<double> query_counts = {100, 400, 1000};
  std::vector<Series> series;
  for (double nmq : query_counts) {
    series.push_back({"nmq=" + std::to_string(static_cast<int>(nmq)), {}});
  }
  RunOptions options;
  options.steps = 8;

  for (double alpha : alphas) {
    for (size_t k = 0; k < query_counts.size(); ++k) {
      sim::SimulationParams params;
      params.alpha = alpha;
      params.num_queries = static_cast<int>(query_counts[k]);
      Progress("fig10 alpha=" + std::to_string(alpha) +
               " nmq=" + std::to_string(params.num_queries));
      series[k].values.push_back(
          RunMode(params, sim::SimMode::kMobiEyesEager, options)
              .AverageLqtSize());
    }
  }
  PrintTable("Fig 10: average LQT size vs alpha", "alpha", alphas, series);
  return 0;
}
