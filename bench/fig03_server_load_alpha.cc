// Figure 3: effect of the grid cell size alpha on server load, compared
// against the (alpha-independent) centralized baselines.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("fig03_server_load_alpha", argc, argv);
  std::vector<double> alphas = {0.5, 1, 2, 4, 8, 16};
  std::vector<Series> series = {{"ObjectIndex", {}},
                                {"QueryIndex", {}},
                                {"MobiEyes-EQP", {}},
                                {"MobiEyes-LQP", {}}};
  RunOptions options;
  options.steps = 8;

  // The centralized baselines do not depend on alpha: measure them once on
  // the default configuration (jobs 0 and 1) and repeat the value across
  // rows; the per-alpha EQP/LQP cells follow pairwise.
  std::vector<SweepJob> jobs;
  {
    SweepJob object_index;
    object_index.mode = sim::SimMode::kObjectIndex;
    object_index.options = options;
    object_index.label = "fig03 ObjectIndex baseline";
    jobs.push_back(object_index);
    SweepJob query_index;
    query_index.mode = sim::SimMode::kQueryIndex;
    query_index.options = options;
    query_index.label = "fig03 QueryIndex baseline";
    jobs.push_back(query_index);
  }
  for (double alpha : alphas) {
    for (sim::SimMode mode :
         {sim::SimMode::kMobiEyesEager, sim::SimMode::kMobiEyesLazy}) {
      SweepJob job;
      job.params.alpha = alpha;
      job.mode = mode;
      job.options = options;
      job.label = "fig03 alpha=" + std::to_string(alpha) + " " +
                  sim::SimModeName(mode);
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  double object_index = results[0].ServerLoadPerStep();
  double query_index = results[1].ServerLoadPerStep();
  size_t cell = 2;
  for (size_t row = 0; row < alphas.size(); ++row) {
    series[0].values.push_back(object_index);
    series[1].values.push_back(query_index);
    series[2].values.push_back(results[cell++].ServerLoadPerStep());
    series[3].values.push_back(results[cell++].ServerLoadPerStep());
  }
  PrintTable("Fig 3: server load (s/step) vs alpha", "alpha", alphas, series);
  return FinishBench();
}
