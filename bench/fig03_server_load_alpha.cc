// Figure 3: effect of the grid cell size alpha on server load, compared
// against the (alpha-independent) centralized baselines.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> alphas = {0.5, 1, 2, 4, 8, 16};
  std::vector<Series> series = {{"ObjectIndex", {}},
                                {"QueryIndex", {}},
                                {"MobiEyes-EQP", {}},
                                {"MobiEyes-LQP", {}}};
  RunOptions options;
  options.steps = 8;

  // The centralized baselines do not depend on alpha: measure them once on
  // the default configuration and repeat the value across rows.
  sim::SimulationParams defaults;
  Progress("fig03 centralized baselines");
  double object_index =
      RunMode(defaults, sim::SimMode::kObjectIndex, options)
          .ServerLoadPerStep();
  double query_index = RunMode(defaults, sim::SimMode::kQueryIndex, options)
                           .ServerLoadPerStep();

  for (double alpha : alphas) {
    sim::SimulationParams params;
    params.alpha = alpha;
    Progress("fig03 alpha=" + std::to_string(alpha));
    series[0].values.push_back(object_index);
    series[1].values.push_back(query_index);
    series[2].values.push_back(
        RunMode(params, sim::SimMode::kMobiEyesEager, options)
            .ServerLoadPerStep());
    series[3].values.push_back(
        RunMode(params, sim::SimMode::kMobiEyesLazy, options)
            .ServerLoadPerStep());
  }
  PrintTable("Fig 3: server load (s/step) vs alpha", "alpha", alphas, series);
  return 0;
}
