// Figure 12: effect of the query radius on the average LQT size. The x-axis
// is a radius factor multiplying the Table 1 radii; the effect only becomes
// visible once radius differences exceed the cell size alpha.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("fig12_lqt_radius", argc, argv);
  std::vector<double> radius_factors = {0.5, 1.0, 1.5, 2.0, 3.0, 4.0};
  std::vector<double> alphas = {2.0, 5.0, 10.0};
  std::vector<Series> series;
  for (double alpha : alphas) {
    series.push_back({"alpha=" + std::to_string(static_cast<int>(alpha)), {}});
  }
  RunOptions options;
  options.steps = 8;

  std::vector<SweepJob> jobs;
  for (double factor : radius_factors) {
    for (double alpha : alphas) {
      SweepJob job;
      job.params.radius_factor = factor;
      job.params.alpha = alpha;
      job.options = options;
      job.label = "fig12 factor=" + std::to_string(factor) +
                  " alpha=" + std::to_string(alpha);
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < radius_factors.size(); ++row) {
    for (size_t k = 0; k < alphas.size(); ++k) {
      series[k].values.push_back(results[cell++].AverageLqtSize());
    }
  }
  PrintTable("Fig 12: average LQT size vs query radius factor",
             "radius_factor", radius_factors, series);
  return FinishBench();
}
