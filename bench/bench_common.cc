#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <vector>

#include "mobieyes/common/thread_pool.h"
#include "mobieyes/core/rebalance.h"
#include "mobieyes/net/backplane.h"

namespace mobieyes::bench {

namespace {

struct RecordedTable {
  std::string title;
  std::string xlabel;
  std::vector<double> xs;
  std::vector<Series> series;
};

// One sweep cell's recorded observability output, in job order across all
// RunSweep calls of the bench.
struct RecordedCell {
  std::string label;
  std::string metrics_json;
  std::vector<obs::TraceEvent> trace_events;
  std::string heatmap_json;
};

struct BenchState {
  std::string name = "bench";
  int threads = 0;  // resolved in InitBench
  std::string json_path;
  std::string trace_path;
  std::string metrics_path;
  std::string heatmap_path;
  int sample_stride = 0;
  int steps_override = 0;
  int objects_override = 0;
  // Fault-injection flag overrides; negative means "flag not given" so a
  // job's own FaultOptions survive when the flag is absent.
  double drop_rate = -1.0;
  double delay_rate = -1.0;
  int delay_steps = -1;
  double dup_rate = -1.0;
  int outage_period = -1;
  int outage_duration = -1;
  double disconnect_rate = -1.0;
  int disconnect_period = -1;
  int disconnect_duration = -1;
  uint64_t fault_seed = 0;
  bool fault_seed_set = false;
  bool harden = false;
  // Crash-recovery flag overrides, same negative-means-unset convention.
  long long server_crash_step = -1;
  int server_recovery_steps = -1;
  double client_restart_rate = -1.0;
  int checkpoint_stride = -1;
  // Sharding flag overrides, same negative-means-unset convention.
  int shards = -1;
  int shard_threads = -1;
  int shard_partition = -1;  // 0 = rowband, 1 = hash
  std::string rebalance_spec;  // "off" or STRIDE:THRESHOLD:MAX_MOVES
  bool rebalance_set = false;
  int shard_transport = -1;  // 0 = inproc, 1 = process
  std::string shardd_path;
  long long shard_kill_step = -1;
  int shard_kill_index = -1;
  int backplane_timeout_steps = -1;
  int heartbeat_stride = -1;
  int shard_authority = -1;  // -1 = flag not given, 1 = on
  std::string backplane_fault;
  bool backplane_fault_set = false;
  std::chrono::steady_clock::time_point start;
  std::vector<RecordedTable> tables;
  std::vector<RecordedCell> cells;
};

BenchState& State() {
  static BenchState state;
  return state;
}

// JSON string escape for the characters our titles/labels can contain.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Authority/chaos RunOptions → SimulationConfig: parses the fault spec
// (warning and no injected faults on a bad spec) and sets authority mode.
void ApplyBackplaneOptions(const RunOptions& options,
                           sim::SimulationConfig* config) {
  config->shard_authority = options.shard_authority;
  if (!options.backplane_fault.empty()) {
    Status st = net::ParseBackplaneFaultSpec(options.backplane_fault,
                                             &config->backplane_fault);
    if (!st.ok()) {
      std::fprintf(stderr, "[bench] bad backplane fault spec '%s': %s\n",
                   options.backplane_fault.c_str(),
                   st.ToString().c_str());
    }
  }
}

void AppendDoubles(std::string* out, const std::vector<double>& values) {
  *out += '[';
  for (size_t k = 0; k < values.size(); ++k) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", values[k]);
    if (k > 0) *out += ',';
    *out += buffer;
  }
  *out += ']';
}

}  // namespace

sim::RunMetrics RunMode(const sim::SimulationParams& params, sim::SimMode mode,
                        const RunOptions& options,
                        const core::MobiEyesOptions& mobieyes) {
  sim::SimulationConfig config;
  config.params = params;
  config.mode = mode;
  config.mobieyes = mobieyes;
  config.measure_error = options.measure_error;
  config.track_per_object_bytes = options.track_per_object_bytes;
  config.warmup_steps = options.warmup_steps;
  config.checkpoint_stride = options.checkpoint_stride;
  config.wal_limit = options.wal_limit;
  config.shard_threads = options.shard_threads;
  config.shard_transport = options.shard_transport;
  config.supervisor.shardd_path = options.shardd_path;
  config.supervisor.timeout_steps = options.backplane_timeout_steps;
  config.supervisor.heartbeat_stride = options.heartbeat_stride;
  config.shard_kill_step = options.shard_kill_step;
  config.shard_kill_index = options.shard_kill_index;
  ApplyBackplaneOptions(options, &config);
  auto simulation = sim::Simulation::Make(config);
  if (!simulation.ok()) {
    std::fprintf(stderr, "simulation setup failed: %s\n",
                 simulation.status().ToString().c_str());
    return sim::RunMetrics{};
  }
  (*simulation)->Run(options.steps);
  return (*simulation)->metrics();
}

void InitBench(const std::string& name, int argc, char** argv) {
  BenchState& state = State();
  state.name = name;
  state.threads = ThreadPool::HardwareThreads();
  state.start = std::chrono::steady_clock::now();
  for (int k = 1; k < argc; ++k) {
    const char* arg = argv[k];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      int threads = std::atoi(arg + 10);
      if (threads < 1) {
        std::fprintf(stderr, "[bench] ignoring bad --threads value '%s'\n",
                     arg + 10);
      } else {
        state.threads = threads;
      }
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      state.json_path = arg + 7;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      state.trace_path = arg + 8;
    } else if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      state.metrics_path = arg + 15;
    } else if (std::strncmp(arg, "--heatmap=", 10) == 0) {
      state.heatmap_path = arg + 10;
    } else if (std::strncmp(arg, "--sample-stride=", 16) == 0) {
      state.sample_stride = std::atoi(arg + 16);
    } else if (std::strncmp(arg, "--steps=", 8) == 0) {
      state.steps_override = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--objects=", 10) == 0) {
      state.objects_override = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--drop-rate=", 12) == 0) {
      state.drop_rate = std::atof(arg + 12);
    } else if (std::strncmp(arg, "--delay-steps=", 14) == 0) {
      state.delay_steps = std::atoi(arg + 14);
    } else if (std::strncmp(arg, "--delay-rate=", 13) == 0) {
      state.delay_rate = std::atof(arg + 13);
    } else if (std::strncmp(arg, "--dup-rate=", 11) == 0) {
      state.dup_rate = std::atof(arg + 11);
    } else if (std::strncmp(arg, "--outage=", 9) == 0) {
      if (std::sscanf(arg + 9, "%d:%d", &state.outage_period,
                      &state.outage_duration) != 2) {
        std::fprintf(stderr, "[bench] bad --outage value '%s' (want P:D)\n",
                     arg + 9);
        state.outage_period = state.outage_duration = -1;
      }
    } else if (std::strncmp(arg, "--disconnect=", 13) == 0) {
      if (std::sscanf(arg + 13, "%lf:%d:%d", &state.disconnect_rate,
                      &state.disconnect_period,
                      &state.disconnect_duration) != 3) {
        std::fprintf(stderr,
                     "[bench] bad --disconnect value '%s' (want R:P:D)\n",
                     arg + 13);
        state.disconnect_rate = -1.0;
        state.disconnect_period = state.disconnect_duration = -1;
      }
    } else if (std::strncmp(arg, "--server-crash=", 15) == 0) {
      if (std::sscanf(arg + 15, "%lld:%d", &state.server_crash_step,
                      &state.server_recovery_steps) != 2 ||
          state.server_crash_step < 0 || state.server_recovery_steps < 0) {
        std::fprintf(stderr,
                     "[bench] bad --server-crash value '%s' (want S:R)\n",
                     arg + 15);
        state.server_crash_step = -1;
        state.server_recovery_steps = -1;
      }
    } else if (std::strncmp(arg, "--client-restart-rate=", 22) == 0) {
      state.client_restart_rate = std::atof(arg + 22);
    } else if (std::strncmp(arg, "--checkpoint-stride=", 20) == 0) {
      state.checkpoint_stride = std::atoi(arg + 20);
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      state.shards = std::atoi(arg + 9);
      if (state.shards < 1) {
        std::fprintf(stderr, "[bench] ignoring bad --shards value '%s'\n",
                     arg + 9);
        state.shards = -1;
      }
    } else if (std::strncmp(arg, "--shard-threads=", 16) == 0) {
      state.shard_threads = std::atoi(arg + 16);
      if (state.shard_threads < 1) {
        std::fprintf(stderr,
                     "[bench] ignoring bad --shard-threads value '%s'\n",
                     arg + 16);
        state.shard_threads = -1;
      }
    } else if (std::strncmp(arg, "--shard-partition=", 18) == 0) {
      if (std::strcmp(arg + 18, "rowband") == 0) {
        state.shard_partition = 0;
      } else if (std::strcmp(arg + 18, "hash") == 0) {
        state.shard_partition = 1;
      } else {
        std::fprintf(stderr,
                     "[bench] bad --shard-partition value '%s' "
                     "(want rowband|hash)\n",
                     arg + 18);
      }
    } else if (std::strncmp(arg, "--rebalance=", 12) == 0) {
      core::ShardingOptions probe;
      Status st = core::ParseRebalanceSpec(arg + 12, &probe);
      if (st.ok()) {
        state.rebalance_spec = arg + 12;
        state.rebalance_set = true;
      } else {
        std::fprintf(stderr, "[bench] bad --rebalance value '%s': %s\n",
                     arg + 12, st.ToString().c_str());
      }
    } else if (std::strncmp(arg, "--shard-transport=", 18) == 0) {
      if (std::strcmp(arg + 18, "inproc") == 0) {
        state.shard_transport = 0;
      } else if (std::strcmp(arg + 18, "process") == 0) {
        state.shard_transport = 1;
      } else {
        std::fprintf(stderr,
                     "[bench] bad --shard-transport value '%s' "
                     "(want inproc|process)\n",
                     arg + 18);
      }
    } else if (std::strncmp(arg, "--shardd=", 9) == 0) {
      state.shardd_path = arg + 9;
    } else if (std::strncmp(arg, "--shard-kill=", 13) == 0) {
      if (std::sscanf(arg + 13, "%lld:%d", &state.shard_kill_step,
                      &state.shard_kill_index) != 2 ||
          state.shard_kill_step < 0 || state.shard_kill_index < 0) {
        std::fprintf(stderr,
                     "[bench] bad --shard-kill value '%s' (want S:K)\n",
                     arg + 13);
        state.shard_kill_step = -1;
        state.shard_kill_index = -1;
      }
    } else if (std::strncmp(arg, "--backplane-timeout-steps=", 26) == 0) {
      state.backplane_timeout_steps = std::atoi(arg + 26);
      if (state.backplane_timeout_steps < 1) {
        std::fprintf(stderr,
                     "[bench] bad --backplane-timeout-steps value '%s'\n",
                     arg + 26);
        state.backplane_timeout_steps = -1;
      }
    } else if (std::strncmp(arg, "--heartbeat-stride=", 19) == 0) {
      state.heartbeat_stride = std::atoi(arg + 19);
      if (state.heartbeat_stride < 1) {
        std::fprintf(stderr, "[bench] bad --heartbeat-stride value '%s'\n",
                     arg + 19);
        state.heartbeat_stride = -1;
      }
    } else if (std::strcmp(arg, "--shard-authority") == 0) {
      state.shard_authority = 1;
    } else if (std::strncmp(arg, "--backplane-fault=", 18) == 0) {
      net::BackplaneFaultPlan probe;
      Status st = net::ParseBackplaneFaultSpec(arg + 18, &probe);
      if (st.ok()) {
        state.backplane_fault = arg + 18;
        state.backplane_fault_set = true;
      } else {
        std::fprintf(stderr, "[bench] bad --backplane-fault value '%s': %s\n",
                     arg + 18, st.ToString().c_str());
      }
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      state.fault_seed = std::strtoull(arg + 7, nullptr, 10);
      state.fault_seed_set = true;
    } else if (std::strcmp(arg, "--harden") == 0) {
      state.harden = true;
    }
  }
  if (state.sample_stride == 0 && !state.metrics_path.empty()) {
    state.sample_stride = 1;  // a metrics report should include a series
  }
  // A bare --delay-steps should actually delay something.
  if (state.delay_steps > 0 && state.delay_rate < 0.0) {
    state.delay_rate = 0.2;
  }
}

int BenchThreads() { return State().threads; }

namespace {

// Builds, runs and observes one sweep cell. `pid` tags the cell's trace
// events so a merged sweep trace shows one process track per cell.
SweepCellResult RunCell(const SweepJob& job, const SweepObsOptions& obs,
                        int32_t pid) {
  sim::SimulationConfig config;
  config.params = job.params;
  config.mode = job.mode;
  config.mobieyes = job.mobieyes;
  config.measure_error = job.options.measure_error;
  config.track_per_object_bytes = job.options.track_per_object_bytes;
  config.warmup_steps = job.options.warmup_steps;
  config.checkpoint_stride = job.options.checkpoint_stride;
  config.wal_limit = job.options.wal_limit;
  config.shard_threads = job.options.shard_threads;
  config.shard_transport = job.options.shard_transport;
  config.supervisor.shardd_path = job.options.shardd_path;
  config.supervisor.timeout_steps = job.options.backplane_timeout_steps;
  config.supervisor.heartbeat_stride = job.options.heartbeat_stride;
  config.shard_kill_step = job.options.shard_kill_step;
  config.shard_kill_index = job.options.shard_kill_index;
  ApplyBackplaneOptions(job.options, &config);
  config.faults = job.faults.plan;
  if (job.faults.harden) {
    config.mobieyes =
        core::HardenedOptions(config.mobieyes, job.params.time_step);
  }
  config.obs.enable_metrics = obs.metrics;
  config.obs.enable_trace = obs.trace;
  config.obs.sample_stride = obs.sample_stride;
  config.obs.enable_heatmap = obs.heatmap;
  config.obs.enable_lifecycle = obs.lifecycle;
  SweepCellResult result;
  auto simulation = sim::Simulation::Make(config);
  if (!simulation.ok()) {
    std::fprintf(stderr, "simulation setup failed: %s\n",
                 simulation.status().ToString().c_str());
    return result;
  }
  (*simulation)->Run(job.options.steps);
  // Close a partially filled heat-map window (no-op when steps landed on a
  // window boundary) so short cells still export residency + folded totals.
  (*simulation)->FlushHeatmap();
  result.metrics = (*simulation)->metrics();
  if (obs.metrics || obs.sample_stride > 0) {
    // Timing-free so the report depends only on the cell's seed, keeping
    // the parallel sweep deterministic; wall-clock detail belongs to the
    // trace.
    result.metrics_json =
        (*simulation)->ObservabilityJson(/*include_timing=*/false);
  }
  if (obs.trace) {
    obs::TraceRecorder* trace = (*simulation)->trace_recorder();
    trace->SetPid(pid);
    result.trace_events = trace->TakeEvents();
  }
  if (obs.heatmap && (*simulation)->heatmap() != nullptr) {
    // Deterministic flavor: layout-dependent channels excluded, so the
    // export is byte-identical across thread and shard counts.
    result.heatmap_json = (*simulation)->heatmap()->ToJson(
        /*include_layout_dependent=*/false);
  }
  if (obs.capture_results) {
    const std::vector<QueryId>& qids = (*simulation)->installed_queries();
    result.query_results.reserve(qids.size());
    core::MobiEyesServer* server = (*simulation)->server();
    for (QueryId qid : qids) {
      std::vector<ObjectId> sorted;
      const core::MobiEyesServer::SqtEntry* entry =
          server == nullptr ? nullptr : server->FindQuery(qid);
      if (entry != nullptr) {
        sorted.assign(entry->result.begin(), entry->result.end());
        std::sort(sorted.begin(), sorted.end());
      }
      result.query_results.push_back(std::move(sorted));
    }
  }
  return result;
}

// Steps/objects smoke-run overrides and fault-injection overrides from the
// harness flags.
SweepJob ApplyOverrides(SweepJob job) {
  const BenchState& state = State();
  if (state.steps_override > 0) job.options.steps = state.steps_override;
  if (state.objects_override > 0) {
    job.params.num_objects = state.objects_override;
  }
  net::FaultPlan& plan = job.faults.plan;
  if (state.drop_rate >= 0.0) {
    plan.uplink_drop_rate = state.drop_rate;
    plan.downlink_drop_rate = state.drop_rate;
  }
  if (state.delay_steps >= 0) plan.max_delay_steps = state.delay_steps;
  if (state.delay_rate >= 0.0) plan.delay_rate = state.delay_rate;
  if (state.dup_rate >= 0.0) plan.duplicate_rate = state.dup_rate;
  if (state.outage_period >= 0) {
    plan.outage_period_steps = state.outage_period;
    plan.outage_duration_steps = state.outage_duration;
  }
  if (state.disconnect_rate >= 0.0) {
    plan.disconnect_rate = state.disconnect_rate;
    plan.disconnect_period_steps = state.disconnect_period;
    plan.disconnect_duration_steps = state.disconnect_duration;
  }
  if (state.fault_seed_set) plan.seed = state.fault_seed;
  if (state.harden) job.faults.harden = true;
  if (state.server_crash_step >= 0) {
    plan.server_crash_step = state.server_crash_step;
    plan.server_recovery_steps = state.server_recovery_steps;
  }
  if (state.client_restart_rate >= 0.0) {
    plan.client_restart_rate = state.client_restart_rate;
  }
  if (state.checkpoint_stride >= 0) {
    job.options.checkpoint_stride = state.checkpoint_stride;
  }
  if (state.shards > 0) job.mobieyes.sharding.num_shards = state.shards;
  if (state.shard_threads > 0) {
    job.options.shard_threads = state.shard_threads;
  }
  if (state.shard_partition >= 0) {
    job.mobieyes.sharding.partition = state.shard_partition == 0
                                          ? core::ShardPartition::kRowBand
                                          : core::ShardPartition::kHash;
  }
  if (state.rebalance_set) {
    // Validated at parse time; re-applied per job so every cell of the
    // sweep (whatever its own sharding options) gets the override.
    core::ParseRebalanceSpec(state.rebalance_spec, &job.mobieyes.sharding);
  }
  if (state.shard_transport >= 0) {
    job.options.shard_transport =
        state.shard_transport == 1
            ? sim::SimulationConfig::ShardTransport::kProcess
            : sim::SimulationConfig::ShardTransport::kInProcess;
  }
  if (!state.shardd_path.empty()) {
    job.options.shardd_path = state.shardd_path;
  }
  if (state.shard_kill_step >= 0) {
    job.options.shard_kill_step = state.shard_kill_step;
    job.options.shard_kill_index = state.shard_kill_index;
  }
  if (state.backplane_timeout_steps >= 1) {
    job.options.backplane_timeout_steps = state.backplane_timeout_steps;
  }
  if (state.heartbeat_stride >= 1) {
    job.options.heartbeat_stride = state.heartbeat_stride;
  }
  if (state.shard_authority >= 0) {
    job.options.shard_authority = state.shard_authority == 1;
  }
  if (state.backplane_fault_set) {
    job.options.backplane_fault = state.backplane_fault;
  }
  return job;
}

}  // namespace

SweepJob ApplyFlagOverrides(SweepJob job) {
  return ApplyOverrides(std::move(job));
}

std::vector<SweepCellResult> RunSweepObserved(
    const std::vector<SweepJob>& jobs, int threads,
    const SweepObsOptions& obs) {
  ThreadPool pool(threads);
  // One Submit per job (not ParallelFor): cells vary widely in cost, so the
  // shared queue load-balances; futures are joined by index, which pins the
  // result order regardless of completion order.
  std::vector<std::future<SweepCellResult>> pending;
  pending.reserve(jobs.size());
  for (size_t k = 0; k < jobs.size(); ++k) {
    const SweepJob& job = jobs[k];
    pending.push_back(pool.Submit([&job, &obs, k] {
      if (!job.label.empty()) Progress(job.label);
      return RunCell(job, obs, static_cast<int32_t>(k));
    }));
  }
  std::vector<SweepCellResult> results;
  results.reserve(jobs.size());
  for (auto& future : pending) results.push_back(future.get());
  return results;
}

std::vector<sim::RunMetrics> RunSweep(const std::vector<SweepJob>& jobs) {
  return RunSweep(jobs, BenchThreads());
}

std::vector<sim::RunMetrics> RunSweep(const std::vector<SweepJob>& jobs,
                                      int threads) {
  BenchState& state = State();
  SweepObsOptions obs;
  obs.metrics = !state.metrics_path.empty();
  obs.trace = !state.trace_path.empty();
  obs.sample_stride = obs.metrics ? state.sample_stride : 0;
  obs.heatmap = !state.heatmap_path.empty();
  // Lifecycle latency tables ride inside the metrics report.
  obs.lifecycle = obs.metrics;

  std::vector<SweepJob> effective;
  effective.reserve(jobs.size());
  for (const SweepJob& job : jobs) effective.push_back(ApplyOverrides(job));

  std::vector<SweepCellResult> cells =
      RunSweepObserved(effective, threads, obs);
  std::vector<sim::RunMetrics> results;
  results.reserve(cells.size());
  const bool record = obs.metrics || obs.trace || obs.heatmap;
  // Pids must be unique across RunSweep calls for the merged trace; shift
  // this batch past the cells already recorded.
  int32_t pid_base = static_cast<int32_t>(state.cells.size());
  for (size_t k = 0; k < cells.size(); ++k) {
    results.push_back(cells[k].metrics);
    if (record) {
      for (obs::TraceEvent& event : cells[k].trace_events) {
        event.pid += pid_base;
      }
      state.cells.push_back(RecordedCell{effective[k].label,
                                         std::move(cells[k].metrics_json),
                                         std::move(cells[k].trace_events),
                                         std::move(cells[k].heatmap_json)});
    }
  }
  return results;
}

void PrintTable(const std::string& title, const std::string& xlabel,
                const std::vector<double>& xs,
                const std::vector<Series>& series) {
  State().tables.push_back(RecordedTable{title, xlabel, xs, series});
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-14s", xlabel.c_str());
  for (const Series& s : series) {
    std::printf("  %-18s", s.name.c_str());
  }
  std::printf("\n");
  for (size_t row = 0; row < xs.size(); ++row) {
    std::printf("%-14.6g", xs[row]);
    for (const Series& s : series) {
      if (row < s.values.size()) {
        std::printf("  %-18.6g", s.values[row]);
      } else {
        std::printf("  %-18s", "-");
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

namespace {

// Writes the merged Chrome trace: one process track per sweep cell, named
// by the cell's job label.
bool WriteTraceFile(const BenchState& state) {
  std::vector<obs::TraceEvent> events;
  std::vector<std::string> process_names;
  process_names.reserve(state.cells.size());
  for (const RecordedCell& cell : state.cells) {
    process_names.push_back(cell.label.empty()
                                ? "cell " + std::to_string(
                                                process_names.size())
                                : cell.label);
    events.insert(events.end(), cell.trace_events.begin(),
                  cell.trace_events.end());
  }
  return obs::TraceRecorder::WriteFile(state.trace_path, events,
                                       process_names);
}

// Writes the per-cell metrics report. Cells are ordered by job index and
// each cell's JSON is timing-free, so the file is byte-identical for any
// --threads value.
bool WriteMetricsFile(const BenchState& state) {
  std::string json = "{\"bench\": \"" + JsonEscape(state.name) +
                     "\",\n\"cells\": [\n";
  for (size_t k = 0; k < state.cells.size(); ++k) {
    const RecordedCell& cell = state.cells[k];
    json += "{\"label\": \"" + JsonEscape(cell.label) + "\", \"report\": ";
    json += cell.metrics_json.empty() ? "{}" : cell.metrics_json;
    json += k + 1 < state.cells.size() ? "},\n" : "}\n";
  }
  json += "]}\n";
  std::FILE* file = std::fopen(state.metrics_path.c_str(), "w");
  if (file == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  return std::fclose(file) == 0 && written == json.size();
}

// Writes the per-cell heat-map export. Same ordering/determinism contract
// as the metrics file: byte-identical for any --threads, --shards or
// --shard-threads value.
bool WriteHeatmapFile(const BenchState& state) {
  std::string json = "{\"bench\": \"" + JsonEscape(state.name) +
                     "\",\n\"cells\": [\n";
  for (size_t k = 0; k < state.cells.size(); ++k) {
    const RecordedCell& cell = state.cells[k];
    json += "{\"label\": \"" + JsonEscape(cell.label) + "\", \"heatmap\": ";
    json += cell.heatmap_json.empty() ? "{}" : cell.heatmap_json;
    json += k + 1 < state.cells.size() ? "},\n" : "}\n";
  }
  json += "]}\n";
  std::FILE* file = std::fopen(state.heatmap_path.c_str(), "w");
  if (file == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  return std::fclose(file) == 0 && written == json.size();
}

}  // namespace

int FinishBench() {
  BenchState& state = State();
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    state.start)
          .count();
  if (!state.trace_path.empty()) {
    if (WriteTraceFile(state)) {
      Progress("wrote " + state.trace_path);
    } else {
      std::fprintf(stderr, "[bench] cannot write %s\n",
                   state.trace_path.c_str());
      return 1;
    }
  }
  if (!state.metrics_path.empty()) {
    if (WriteMetricsFile(state)) {
      Progress("wrote " + state.metrics_path);
    } else {
      std::fprintf(stderr, "[bench] cannot write %s\n",
                   state.metrics_path.c_str());
      return 1;
    }
  }
  if (!state.heatmap_path.empty()) {
    if (WriteHeatmapFile(state)) {
      Progress("wrote " + state.heatmap_path);
    } else {
      std::fprintf(stderr, "[bench] cannot write %s\n",
                   state.heatmap_path.c_str());
      return 1;
    }
  }
  if (state.json_path.empty()) return 0;

  std::string json = "{\n";
  json += "  \"bench\": \"" + JsonEscape(state.name) + "\",\n";
  json += "  \"threads\": " + std::to_string(state.threads) + ",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(ThreadPool::HardwareThreads()) + ",\n";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", wall_seconds);
  json += "  \"wall_seconds\": " + std::string(buffer) + ",\n";
  json += "  \"tables\": [\n";
  for (size_t t = 0; t < state.tables.size(); ++t) {
    const RecordedTable& table = state.tables[t];
    json += "    {\n";
    json += "      \"title\": \"" + JsonEscape(table.title) + "\",\n";
    json += "      \"xlabel\": \"" + JsonEscape(table.xlabel) + "\",\n";
    json += "      \"x\": ";
    AppendDoubles(&json, table.xs);
    json += ",\n      \"series\": [\n";
    for (size_t s = 0; s < table.series.size(); ++s) {
      json += "        {\"name\": \"" + JsonEscape(table.series[s].name) +
              "\", \"values\": ";
      AppendDoubles(&json, table.series[s].values);
      json += s + 1 < table.series.size() ? "},\n" : "}\n";
    }
    json += "      ]\n";
    json += t + 1 < state.tables.size() ? "    },\n" : "    }\n";
  }
  json += "  ]\n}\n";

  std::FILE* file = std::fopen(state.json_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n",
                 state.json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  Progress("wrote " + state.json_path);
  return 0;
}

void Progress(const std::string& note) {
  std::fprintf(stderr, "[bench] %s\n", note.c_str());
  std::fflush(stderr);
}

}  // namespace mobieyes::bench
