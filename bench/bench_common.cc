#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <vector>

#include "mobieyes/common/thread_pool.h"

namespace mobieyes::bench {

namespace {

struct RecordedTable {
  std::string title;
  std::string xlabel;
  std::vector<double> xs;
  std::vector<Series> series;
};

struct BenchState {
  std::string name = "bench";
  int threads = 0;  // resolved in InitBench
  std::string json_path;
  std::chrono::steady_clock::time_point start;
  std::vector<RecordedTable> tables;
};

BenchState& State() {
  static BenchState state;
  return state;
}

// JSON string escape for the characters our titles/labels can contain.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AppendDoubles(std::string* out, const std::vector<double>& values) {
  *out += '[';
  for (size_t k = 0; k < values.size(); ++k) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", values[k]);
    if (k > 0) *out += ',';
    *out += buffer;
  }
  *out += ']';
}

}  // namespace

sim::RunMetrics RunMode(const sim::SimulationParams& params, sim::SimMode mode,
                        const RunOptions& options,
                        const core::MobiEyesOptions& mobieyes) {
  sim::SimulationConfig config;
  config.params = params;
  config.mode = mode;
  config.mobieyes = mobieyes;
  config.measure_error = options.measure_error;
  config.track_per_object_bytes = options.track_per_object_bytes;
  config.warmup_steps = options.warmup_steps;
  auto simulation = sim::Simulation::Make(config);
  if (!simulation.ok()) {
    std::fprintf(stderr, "simulation setup failed: %s\n",
                 simulation.status().ToString().c_str());
    return sim::RunMetrics{};
  }
  (*simulation)->Run(options.steps);
  return (*simulation)->metrics();
}

void InitBench(const std::string& name, int argc, char** argv) {
  BenchState& state = State();
  state.name = name;
  state.threads = ThreadPool::HardwareThreads();
  state.start = std::chrono::steady_clock::now();
  for (int k = 1; k < argc; ++k) {
    const char* arg = argv[k];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      int threads = std::atoi(arg + 10);
      if (threads < 1) {
        std::fprintf(stderr, "[bench] ignoring bad --threads value '%s'\n",
                     arg + 10);
      } else {
        state.threads = threads;
      }
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      state.json_path = arg + 7;
    }
  }
}

int BenchThreads() { return State().threads; }

std::vector<sim::RunMetrics> RunSweep(const std::vector<SweepJob>& jobs) {
  return RunSweep(jobs, BenchThreads());
}

std::vector<sim::RunMetrics> RunSweep(const std::vector<SweepJob>& jobs,
                                      int threads) {
  ThreadPool pool(threads);
  // One Submit per job (not ParallelFor): cells vary widely in cost, so the
  // shared queue load-balances; futures are joined by index, which pins the
  // result order regardless of completion order.
  std::vector<std::future<sim::RunMetrics>> pending;
  pending.reserve(jobs.size());
  for (const SweepJob& job : jobs) {
    pending.push_back(pool.Submit([&job] {
      if (!job.label.empty()) Progress(job.label);
      return RunMode(job.params, job.mode, job.options, job.mobieyes);
    }));
  }
  std::vector<sim::RunMetrics> results;
  results.reserve(jobs.size());
  for (auto& future : pending) results.push_back(future.get());
  return results;
}

void PrintTable(const std::string& title, const std::string& xlabel,
                const std::vector<double>& xs,
                const std::vector<Series>& series) {
  State().tables.push_back(RecordedTable{title, xlabel, xs, series});
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-14s", xlabel.c_str());
  for (const Series& s : series) {
    std::printf("  %-18s", s.name.c_str());
  }
  std::printf("\n");
  for (size_t row = 0; row < xs.size(); ++row) {
    std::printf("%-14.6g", xs[row]);
    for (const Series& s : series) {
      if (row < s.values.size()) {
        std::printf("  %-18.6g", s.values[row]);
      } else {
        std::printf("  %-18s", "-");
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

int FinishBench() {
  BenchState& state = State();
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    state.start)
          .count();
  if (state.json_path.empty()) return 0;

  std::string json = "{\n";
  json += "  \"bench\": \"" + JsonEscape(state.name) + "\",\n";
  json += "  \"threads\": " + std::to_string(state.threads) + ",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(ThreadPool::HardwareThreads()) + ",\n";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", wall_seconds);
  json += "  \"wall_seconds\": " + std::string(buffer) + ",\n";
  json += "  \"tables\": [\n";
  for (size_t t = 0; t < state.tables.size(); ++t) {
    const RecordedTable& table = state.tables[t];
    json += "    {\n";
    json += "      \"title\": \"" + JsonEscape(table.title) + "\",\n";
    json += "      \"xlabel\": \"" + JsonEscape(table.xlabel) + "\",\n";
    json += "      \"x\": ";
    AppendDoubles(&json, table.xs);
    json += ",\n      \"series\": [\n";
    for (size_t s = 0; s < table.series.size(); ++s) {
      json += "        {\"name\": \"" + JsonEscape(table.series[s].name) +
              "\", \"values\": ";
      AppendDoubles(&json, table.series[s].values);
      json += s + 1 < table.series.size() ? "},\n" : "}\n";
    }
    json += "      ]\n";
    json += t + 1 < state.tables.size() ? "    },\n" : "    }\n";
  }
  json += "  ]\n}\n";

  std::FILE* file = std::fopen(state.json_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n",
                 state.json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  Progress("wrote " + state.json_path);
  return 0;
}

void Progress(const std::string& note) {
  std::fprintf(stderr, "[bench] %s\n", note.c_str());
  std::fflush(stderr);
}

}  // namespace mobieyes::bench
