#include "bench_common.h"

#include <cstdio>

namespace mobieyes::bench {

sim::RunMetrics RunMode(const sim::SimulationParams& params, sim::SimMode mode,
                        const RunOptions& options,
                        const core::MobiEyesOptions& mobieyes) {
  sim::SimulationConfig config;
  config.params = params;
  config.mode = mode;
  config.mobieyes = mobieyes;
  config.measure_error = options.measure_error;
  config.track_per_object_bytes = options.track_per_object_bytes;
  config.warmup_steps = options.warmup_steps;
  auto simulation = sim::Simulation::Make(config);
  if (!simulation.ok()) {
    std::fprintf(stderr, "simulation setup failed: %s\n",
                 simulation.status().ToString().c_str());
    return sim::RunMetrics{};
  }
  (*simulation)->Run(options.steps);
  return (*simulation)->metrics();
}

void PrintTable(const std::string& title, const std::string& xlabel,
                const std::vector<double>& xs,
                const std::vector<Series>& series) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-14s", xlabel.c_str());
  for (const Series& s : series) {
    std::printf("  %-18s", s.name.c_str());
  }
  std::printf("\n");
  for (size_t row = 0; row < xs.size(); ++row) {
    std::printf("%-14.6g", xs[row]);
    for (const Series& s : series) {
      if (row < s.values.size()) {
        std::printf("  %-18.6g", s.values[row]);
      } else {
        std::printf("  %-18s", "-");
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

void Progress(const std::string& note) {
  std::fprintf(stderr, "[bench] %s\n", note.c_str());
  std::fflush(stderr);
}

}  // namespace mobieyes::bench
