// Microbenchmarks for MobiEyes protocol primitives (google-benchmark):
// per-step cost of a full deployment tick and of the Bmap minimal cover.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mobieyes/net/bmap.h"

namespace {

using namespace mobieyes;  // NOLINT(build/namespaces)

void BM_SimulationStepEager(benchmark::State& state) {
  sim::SimulationConfig config;
  config.mode = sim::SimMode::kMobiEyesEager;
  config.params.num_objects = static_cast<int>(state.range(0));
  config.params.num_queries = config.params.num_objects / 10;
  config.params.velocity_changes_per_step = config.params.num_objects / 10;
  config.warmup_steps = 2;
  auto simulation = sim::Simulation::Make(config);
  if (!simulation.ok()) {
    state.SkipWithError(simulation.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    (*simulation)->Run(1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationStepEager)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_BmapMinimalCover(benchmark::State& state) {
  geo::Rect universe{0, 0, 316, 316};
  auto grid = geo::Grid::Make(universe, 5.0);
  auto layout = net::BaseStationLayout::Make(universe, 10.0);
  auto bmap = net::Bmap::Make(*grid, *layout);
  geo::CellRange region{10, 10 + static_cast<int32_t>(state.range(0)), 10,
                        10 + static_cast<int32_t>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize((*bmap).MinimalCover(region));
  }
}
BENCHMARK(BM_BmapMinimalCover)->Arg(2)->Arg(8)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
