// Server sharding (DESIGN.md §10): server-side step-phase time and messaging
// cost vs the shard count, at 10k and 100k objects. Every cell runs the same
// hardened workload with per-step checkpoints, varying only --shards, and the
// sweep reports:
//
//   - step phase s/step (measured wall time) and the *parallel speedup*:
//     monolith step time over (step - sum_of_shard_bodies + max_shard_body),
//     i.e. the serial remainder plus the critical path — what a perfectly
//     parallel step would cost. This bound is independent of how many
//     hardware threads this machine has (the measured wall-clock speedup is
//     printed too, but it saturates at the machine's core count),
//   - wireless vs coordinator-backplane messaging, including the
//     cross-shard handoff rate,
//   - an equivalence check: every multi-shard cell's final result sets must
//     match the monolith cell's bit for bit (the sharding contract).
//
// Cells run strictly serially (never across a worker pool) so the wall
// times are honest. Shard bodies run *inline* by default (shard_threads=1):
// that keeps each per-shard measurement uncontended CPU time, which the
// parallel-speedup model needs — with a pool oversubscribing the machine's
// cores, descheduled shard bodies inflate their own wall times and the
// model overestimates. Pass --shard-threads=8 on a machine with >= 8 cores
// to see the measured wall-clock column approach the model.
//
// Gate flags for CI (exit 1 on violation):
//   --require-match        fail unless every multi-shard cell matches the
//                          monolith's result sets and wireless totals
//   --require-speedup=X    fail unless the parallel speedup of the largest
//                          cell (most shards, most objects) is >= X

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "mobieyes/core/shard_supervisor.h"

using namespace mobieyes;         // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

namespace {

const int kShardCounts[] = {1, 2, 4, 8};
const int kObjectCounts[] = {10000, 100000};

constexpr int kMeasuredSteps = 12;
constexpr int kWarmupSteps = 2;
// Shard bodies run inline by default (see the header comment); override
// with --shard-threads on machines with enough cores.
constexpr int kDefaultShardThreads = 1;

SweepJob MakeJob(int objects, int shards) {
  SweepJob job;
  job.params.num_objects = objects;
  job.params.num_queries = objects / 100;
  job.params.velocity_changes_per_step = objects / 10;
  job.mode = sim::SimMode::kMobiEyesEager;
  job.options.steps = kMeasuredSteps;
  job.options.warmup_steps = kWarmupSteps;
  // Per-step checkpoints keep the (parallelizable) image encoding in the
  // measured step phase, as a sharded production server would run.
  job.options.checkpoint_stride = 1;
  job.options.shard_threads = kDefaultShardThreads;
  job.faults.harden = true;
  job.mobieyes.sharding.num_shards = shards;
  job.label = "shard_sweep objects=" + std::to_string(objects) +
              " shards=" + std::to_string(shards);
  return ApplyFlagOverrides(job);
}

double PerStep(double total, const sim::RunMetrics& m) {
  return m.steps > 0 ? total / static_cast<double>(m.steps) : 0.0;
}

// mono_step / value, guarded against ~0 denominators on tiny smoke runs.
double Speedup(double mono_step, double value) {
  return value > 1e-9 ? mono_step / value : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  InitBench("shard_sweep", argc, argv);
  bool require_match = false;
  double require_speedup = 0.0;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--require-match") == 0) {
      require_match = true;
    } else if (std::strncmp(argv[k], "--require-speedup=", 18) == 0) {
      require_speedup = std::atof(argv[k] + 18);
    }
  }

  SweepObsOptions obs;
  obs.capture_results = true;

  bool all_match = true;
  double final_parallel_speedup = 0.0;

  for (int objects : kObjectCounts) {
    std::vector<SweepJob> jobs;
    for (int shards : kShardCounts) jobs.push_back(MakeJob(objects, shards));
    // With --objects the cells collapse to the override value; keep the
    // sweep meaningful by labeling with the effective count.
    const int effective_objects = jobs[0].params.num_objects;
    std::vector<SweepCellResult> cells = RunSweepObserved(jobs, 1, obs);

    const SweepCellResult& mono = cells[0];
    const double mono_step = mono.metrics.server_step_seconds;

    std::vector<double> xs;
    std::vector<Series> timing = {
        {"step s/step", {}},          {"max shard s/step", {}},
        {"parallel speedup", {}},     {"measured speedup", {}},
        {"server load s/step", {}},
    };
    std::vector<Series> messaging = {
        {"wireless msgs/step", {}},  {"backplane msgs/step", {}},
        {"backplane KB/step", {}},   {"handoffs/step", {}},
        {"results match", {}},
    };
    for (size_t k = 0; k < cells.size(); ++k) {
      const sim::RunMetrics& m = cells[k].metrics;
      xs.push_back(static_cast<double>(jobs[k].mobieyes.sharding.num_shards));

      timing[0].values.push_back(PerStep(m.server_step_seconds, m));
      timing[1].values.push_back(PerStep(m.server_step_max_shard_seconds, m));
      // Serial remainder + critical path: the cost of a perfectly parallel
      // step, whatever this machine's core count.
      const double parallel_step = m.server_step_seconds -
                                   m.server_step_shard_seconds +
                                   m.server_step_max_shard_seconds;
      const double parallel = Speedup(mono_step, parallel_step);
      timing[2].values.push_back(parallel);
      timing[3].values.push_back(Speedup(mono_step, m.server_step_seconds));
      timing[4].values.push_back(PerStep(m.server_seconds, m));

      messaging[0].values.push_back(
          PerStep(static_cast<double>(m.network.total_messages()), m));
      messaging[1].values.push_back(
          PerStep(static_cast<double>(m.network.inter_shard_messages), m));
      messaging[2].values.push_back(
          PerStep(static_cast<double>(m.network.inter_shard_bytes), m) /
          1024.0);
      messaging[3].values.push_back(
          PerStep(static_cast<double>(m.network.inter_shard_handoffs), m));

      // The sharding contract: identical result sets and wireless totals,
      // whatever the shard count.
      bool match =
          cells[k].query_results == mono.query_results &&
          m.network.uplink_bytes == mono.metrics.network.uplink_bytes &&
          m.network.downlink_bytes == mono.metrics.network.downlink_bytes;
      messaging[4].values.push_back(match ? 1.0 : 0.0);
      if (!match) {
        all_match = false;
        std::fprintf(stderr,
                     "[shard_sweep] MISMATCH vs monolith: %s\n",
                     jobs[k].label.c_str());
      }
      if (k + 1 == cells.size()) {
        final_parallel_speedup = parallel;
      }
    }

    const std::string suffix =
        " (" + std::to_string(effective_objects) + " objects)";
    PrintTable("Shard sweep: server step phase" + suffix, "shards", xs,
               timing);
    PrintTable("Shard sweep: messaging" + suffix, "shards", xs, messaging);

    // True backplane measurement (DESIGN.md §13): rerun the multi-shard
    // cells of the smaller sweep over the process transport — one daemon
    // per shard behind the socket backplane — and report the measured RPC
    // round trip and frame throughput. The result sets must still match
    // the monolith bit for bit (the transport mirrors, it never decides).
    if (objects == kObjectCounts[0]) {
      if (core::ShardSupervisor::FindShardd("").empty()) {
        std::fprintf(stderr,
                     "[shard_sweep] mobieyes_shardd not found; skipping the "
                     "process-transport backplane table\n");
      } else {
        std::vector<SweepJob> process_jobs;
        for (int shards : kShardCounts) {
          if (shards < 2) continue;
          SweepJob job = MakeJob(objects, shards);
          job.options.shard_transport =
              sim::SimulationConfig::ShardTransport::kProcess;
          job.label += " transport=process";
          process_jobs.push_back(std::move(job));
        }
        // Strictly serial: parallel cells would contend for cores with
        // their own daemon processes and poison the RTT measurement.
        std::vector<SweepCellResult> process_cells =
            RunSweepObserved(process_jobs, 1, obs);
        std::vector<double> pxs;
        std::vector<Series> backplane = {
            {"rtt us/rpc", {}},      {"frames/step", {}},
            {"KB/step", {}},         {"restarts", {}},
            {"results match", {}},
        };
        for (size_t k = 0; k < process_cells.size(); ++k) {
          const sim::RunMetrics& m = process_cells[k].metrics;
          pxs.push_back(static_cast<double>(
              process_jobs[k].mobieyes.sharding.num_shards));
          backplane[0].values.push_back(m.BackplaneRttMicros());
          backplane[1].values.push_back(m.BackplaneFramesPerStep());
          backplane[2].values.push_back(m.BackplaneBytesPerStep() / 1024.0);
          backplane[3].values.push_back(
              static_cast<double>(m.shard_restarts));
          bool match = process_cells[k].query_results == mono.query_results;
          backplane[4].values.push_back(match ? 1.0 : 0.0);
          if (!match) {
            all_match = false;
            std::fprintf(stderr, "[shard_sweep] MISMATCH vs monolith: %s\n",
                         process_jobs[k].label.c_str());
          }
        }
        PrintTable("Shard sweep: process-transport backplane" + suffix,
                   "shards", pxs, backplane);
      }
    }
  }

  // Online rebalancing (DESIGN.md §15): the hotspot distribution pins one
  // shard under the static partition; the rebalanced cells run the same
  // workload with --rebalance semantics on and report the per-shard step
  // time spread (max-shard body over the mean body — 1.0 is perfectly
  // even), the handoff volume including migration-driven handoffs, and the
  // wall speedup of the rebalanced step phase over the static one. Result
  // sets must stay identical: the partition is an implementation detail.
  {
    std::vector<double> xs;
    int effective_objects = kObjectCounts[0];
    std::vector<Series> rebalance = {
        {"static spread", {}},        {"rebal spread", {}},
        {"static handoffs/step", {}}, {"rebal handoffs/step", {}},
        {"rebal step speedup", {}},   {"cells moved", {}},
        {"results match", {}},
    };
    for (int shards : kShardCounts) {
      if (shards < 2) continue;
      SweepJob static_job = MakeJob(kObjectCounts[0], shards);
      static_job.params.object_distribution =
          sim::ObjectDistribution::kHotspot;
      effective_objects = static_job.params.num_objects;
      static_job.label += " hotspot static";
      SweepJob rebal_job = static_job;
      rebal_job.mobieyes.sharding.rebalance_stride = 2;
      rebal_job.mobieyes.sharding.rebalance_threshold = 1.1;
      rebal_job.mobieyes.sharding.rebalance_max_moves = 16;
      rebal_job.label = static_job.label + " rebalanced";
      std::vector<SweepCellResult> pair =
          RunSweepObserved({static_job, rebal_job}, 1, obs);
      const sim::RunMetrics& s = pair[0].metrics;
      const sim::RunMetrics& r = pair[1].metrics;
      xs.push_back(static_cast<double>(shards));

      auto spread = [shards](const sim::RunMetrics& m) {
        const double mean =
            m.server_step_shard_seconds / static_cast<double>(shards);
        return mean > 1e-12 ? m.server_step_max_shard_seconds / mean : 0.0;
      };
      rebalance[0].values.push_back(spread(s));
      rebalance[1].values.push_back(spread(r));
      rebalance[2].values.push_back(
          PerStep(static_cast<double>(s.network.inter_shard_handoffs), s));
      rebalance[3].values.push_back(
          PerStep(static_cast<double>(r.network.inter_shard_handoffs), r));
      rebalance[4].values.push_back(
          Speedup(s.server_step_seconds, r.server_step_seconds));
      rebalance[5].values.push_back(
          static_cast<double>(r.rebalance_cells_moved));
      bool match = pair[1].query_results == pair[0].query_results;
      rebalance[6].values.push_back(match ? 1.0 : 0.0);
      if (!match) {
        all_match = false;
        std::fprintf(stderr, "[shard_sweep] MISMATCH vs static: %s\n",
                     rebal_job.label.c_str());
      }
    }
    PrintTable("Shard sweep: hotspot rebalancing (" +
                   std::to_string(effective_objects) + " objects)",
               "shards", xs, rebalance);
  }

  int status = FinishBench();
  if (require_match && !all_match) {
    std::fprintf(stderr,
                 "[shard_sweep] FAIL: multi-shard cells diverged from the "
                 "monolith\n");
    return 1;
  }
  // The parallel-speedup model needs at least two cores for the shard
  // bodies to overlap even in principle; on a single-core host the gate
  // would fail for reasons that have nothing to do with the code.
  if (require_speedup > 0.0 && std::thread::hardware_concurrency() < 2) {
    std::fprintf(stderr,
                 "[shard_sweep] SKIP: --require-speedup=%.3f not enforced "
                 "on a single-core host\n",
                 require_speedup);
    require_speedup = 0.0;
  }
  if (require_speedup > 0.0 && final_parallel_speedup < require_speedup) {
    std::fprintf(stderr,
                 "[shard_sweep] FAIL: parallel speedup %.3f < required %.3f "
                 "(largest cell)\n",
                 final_parallel_speedup, require_speedup);
    return 1;
  }
  return status;
}
