// Fault tolerance: query result accuracy under message loss, for the base
// protocol and the hardened protocol (acks + retries, soft-state leases,
// periodic reconciliation). Sweeps the symmetric drop rate and reports the
// oracle accuracy metrics (missing / spurious / Jaccard agreement) plus the
// message cost of hardening. A second sweep adds delays, duplicates and
// object disconnects on top of the drops.
//
// Harness fault flags (--drop-rate, --delay-steps, --outage, --seed,
// --harden, ...) override every cell, so the CI smoke can re-run single
// points cheaply.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mobieyes/core/shard_supervisor.h"

using namespace mobieyes;         // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

namespace {

SweepJob MakeJob(double drop, bool harden, bool mixed) {
  SweepJob job;
  // Sized so 16 cells with per-step oracle evaluation finish quickly while
  // still exercising grouping, leases and reconciliation.
  job.params.num_objects = 2000;
  job.params.num_queries = 200;
  job.params.velocity_changes_per_step = 200;
  job.mode = sim::SimMode::kMobiEyesEager;
  job.options.steps = 20;
  job.options.measure_error = true;
  job.faults.plan.uplink_drop_rate = drop;
  job.faults.plan.downlink_drop_rate = drop;
  if (mixed) {
    job.faults.plan.delay_rate = 0.2;
    job.faults.plan.max_delay_steps = 2;
    job.faults.plan.duplicate_rate = 0.05;
    job.faults.plan.disconnect_rate = 0.1;
    job.faults.plan.disconnect_period_steps = 20;
    job.faults.plan.disconnect_duration_steps = 4;
  }
  job.faults.harden = harden;
  job.label = std::string(mixed ? "mixed" : "drop") +
              " p=" + std::to_string(drop) +
              (harden ? " hardened" : " base");
  return job;
}

void PrintSweep(const std::string& title, const std::vector<double>& drops,
                const std::vector<sim::RunMetrics>& results) {
  // Cells are laid out drop-major: (base, hardened) per drop rate.
  std::vector<Series> accuracy = {
      {"missing base", {}},   {"missing hard", {}}, {"spurious base", {}},
      {"spurious hard", {}},  {"agree base", {}},   {"agree hard", {}},
  };
  std::vector<Series> cost = {
      {"msg/s base", {}},    {"msg/s hard", {}},  {"dropped base", {}},
      {"dropped hard", {}},  {"delayed hard", {}}, {"dup hard", {}},
  };
  for (size_t row = 0; row < drops.size(); ++row) {
    const sim::RunMetrics& base = results[2 * row];
    const sim::RunMetrics& hard = results[2 * row + 1];
    accuracy[0].values.push_back(base.AverageError());
    accuracy[1].values.push_back(hard.AverageError());
    accuracy[2].values.push_back(base.AverageSpurious());
    accuracy[3].values.push_back(hard.AverageSpurious());
    accuracy[4].values.push_back(base.AverageAgreement());
    accuracy[5].values.push_back(hard.AverageAgreement());
    cost[0].values.push_back(base.MessagesPerSecond());
    cost[1].values.push_back(hard.MessagesPerSecond());
    cost[2].values.push_back(static_cast<double>(base.network.total_dropped()));
    cost[3].values.push_back(static_cast<double>(hard.network.total_dropped()));
    cost[4].values.push_back(
        static_cast<double>(hard.network.delayed_messages));
    cost[5].values.push_back(
        static_cast<double>(hard.network.duplicated_messages));
  }
  PrintTable(title + ": accuracy vs oracle", "drop rate", drops, accuracy);
  PrintTable(title + ": message cost", "drop rate", drops, cost);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench("fault_sweep", argc, argv);

  std::vector<double> drops = {0.0, 0.02, 0.05, 0.1, 0.2};
  std::vector<SweepJob> jobs;
  for (double drop : drops) {
    jobs.push_back(MakeJob(drop, /*harden=*/false, /*mixed=*/false));
    jobs.push_back(MakeJob(drop, /*harden=*/true, /*mixed=*/false));
  }
  std::vector<double> mixed_drops = {0.0, 0.05, 0.1};
  for (double drop : mixed_drops) {
    jobs.push_back(MakeJob(drop, /*harden=*/false, /*mixed=*/true));
    jobs.push_back(MakeJob(drop, /*harden=*/true, /*mixed=*/true));
  }

  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  PrintSweep("Fault sweep (drops only)", drops,
             {results.begin(), results.begin() + 2 * drops.size()});
  PrintSweep("Fault sweep (drops + delay/dup/disconnect)", mixed_drops,
             {results.begin() + 2 * drops.size(), results.end()});

  // Backplane chaos (DESIGN.md §14): the same hardened workload over the
  // process transport with authoritative daemons, sweeping the *backplane*
  // frame-fault rate (drops + delays on the supervisor-daemon links, on top
  // of a clean wireless network). Failover keeps every uplink flowing, so
  // the table's dropped-uplink column must stay zero and agreement must
  // stay at the fault-free hardened level.
  if (core::ShardSupervisor::FindShardd("").empty()) {
    std::fprintf(stderr,
                 "[fault_sweep] mobieyes_shardd not found; skipping the "
                 "backplane chaos table\n");
  } else {
    std::vector<double> chaos_rates = {0.0, 0.05, 0.2};
    std::vector<SweepJob> chaos_jobs;
    for (double rate : chaos_rates) {
      SweepJob job = MakeJob(0.0, /*harden=*/true, /*mixed=*/false);
      job.options.shard_transport =
          sim::SimulationConfig::ShardTransport::kProcess;
      job.options.shard_authority = true;
      job.mobieyes.sharding.num_shards = 4;
      if (rate > 0.0) {
        char spec[64];
        std::snprintf(spec, sizeof(spec), "drop=%g,delay=%g:2,seed=11",
                      rate, rate);
        job.options.backplane_fault = spec;
      }
      job.label = "chaos rate=" + std::to_string(rate) + " authority";
      chaos_jobs.push_back(std::move(job));
    }
    // Strictly serial: cells would contend for cores with their own daemon
    // processes.
    std::vector<sim::RunMetrics> chaos = RunSweep(chaos_jobs, 1);
    std::vector<Series> columns = {
        {"agreement", {}},       {"uplinks dropped", {}},
        {"failovers", {}},       {"cutovers", {}},
        {"chaos injections", {}}, {"scans remote", {}},
    };
    for (const sim::RunMetrics& m : chaos) {
      columns[0].values.push_back(m.AverageAgreement());
      columns[1].values.push_back(static_cast<double>(m.uplinks_dropped));
      columns[2].values.push_back(
          static_cast<double>(m.backplane_failovers));
      columns[3].values.push_back(
          static_cast<double>(m.backplane_cutovers));
      columns[4].values.push_back(static_cast<double>(
          m.backplane_chaos_frames + m.backplane_chaos_kills));
      columns[5].values.push_back(
          static_cast<double>(m.backplane_scans_remote));
    }
    PrintTable("Fault sweep (backplane chaos, authority mode)",
               "chaos rate", chaos_rates, columns);
  }
  return FinishBench();
}
