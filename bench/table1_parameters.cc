// Table 1: simulation parameters. Prints the default configuration and the
// value ranges swept by the figure benches, plus a validation check.

#include <cstdio>

#include "bench_common.h"

int main() {
  mobieyes::sim::SimulationParams params;
  std::printf("=== Table 1: Simulation Parameters ===\n");
  std::printf("%-10s %-55s %-28s %s\n", "Parameter", "Description",
              "Value range", "Default");
  std::printf("%-10s %-55s %-28s %.6g\n", "ts", "Time step (seconds)", "30",
              params.time_step);
  std::printf("%-10s %-55s %-28s %.6g\n", "alpha", "Grid cell side length",
              "0.5-16 miles", params.alpha);
  std::printf("%-10s %-55s %-28s %d\n", "no", "Number of objects",
              "1,000-10,000", params.num_objects);
  std::printf("%-10s %-55s %-28s %d\n", "nmq", "Number of moving queries",
              "100-1,000", params.num_queries);
  std::printf("%-10s %-55s %-28s %d\n", "nmo",
              "Objects changing velocity vector per time step", "100-1,000",
              params.velocity_changes_per_step);
  std::printf("%-10s %-55s %-28s %.6g\n", "area", "Area of consideration",
              "100,000 square miles", params.area_square_miles);
  std::printf("%-10s %-55s %-28s %.6g\n", "alen", "Base station side length",
              "5-80 miles", params.base_station_side);
  std::printf("%-10s %-55s %-28s %s\n", "qradius", "Query radius",
              "{3, 2, 1, 4, 5} miles (zipf)", "normal(mean, mean/5)");
  std::printf("%-10s %-55s %-28s %.6g\n", "qselect", "Query selectivity",
              "0.75", params.query_selectivity);
  std::printf("%-10s %-55s %-28s %s\n", "mospeed", "Max. object speed",
              "{100, 50, 150, 200, 250} mph", "zipf(0.8)");
  mobieyes::Status status = params.Validate();
  std::printf("\nvalidation: %s\n", status.ToString().c_str());
  return status.ok() ? 0 : 1;
}
