// Figure 2: error associated with lazy query propagation. Average query
// result error (missing fraction vs the exact result) as a function of the
// number of objects changing their velocity vector per time step, for
// several grid cell sizes alpha.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("fig02_lqp_error", argc, argv);
  std::vector<double> velocity_changes = {100, 250, 500, 750, 1000};
  std::vector<double> alphas = {2.0, 5.0, 10.0};
  std::vector<Series> series;
  for (double alpha : alphas) {
    series.push_back({"alpha=" + std::to_string(static_cast<int>(alpha)), {}});
  }

  RunOptions options;
  options.steps = 8;
  options.measure_error = true;

  std::vector<SweepJob> jobs;
  for (double nmo : velocity_changes) {
    for (double alpha : alphas) {
      SweepJob job;
      job.params.velocity_changes_per_step = static_cast<int>(nmo);
      job.params.alpha = alpha;
      job.mode = sim::SimMode::kMobiEyesLazy;
      job.options = options;
      job.label =
          "fig02 nmo=" + std::to_string(job.params.velocity_changes_per_step) +
          " alpha=" + std::to_string(alpha);
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < velocity_changes.size(); ++row) {
    for (size_t k = 0; k < alphas.size(); ++k) {
      series[k].values.push_back(results[cell++].AverageError());
    }
  }
  PrintTable(
      "Fig 2: LQP average result error vs objects changing velocity per step",
      "nmo", velocity_changes, series);
  return FinishBench();
}
