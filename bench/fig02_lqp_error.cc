// Figure 2: error associated with lazy query propagation. Average query
// result error (missing fraction vs the exact result) as a function of the
// number of objects changing their velocity vector per time step, for
// several grid cell sizes alpha.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> velocity_changes = {100, 250, 500, 750, 1000};
  std::vector<double> alphas = {2.0, 5.0, 10.0};
  std::vector<Series> series;
  for (double alpha : alphas) {
    series.push_back({"alpha=" + std::to_string(static_cast<int>(alpha)), {}});
  }

  RunOptions options;
  options.steps = 8;
  options.measure_error = true;

  for (double nmo : velocity_changes) {
    for (size_t k = 0; k < alphas.size(); ++k) {
      sim::SimulationParams params;
      params.velocity_changes_per_step = static_cast<int>(nmo);
      params.alpha = alphas[k];
      Progress("fig02 nmo=" + std::to_string(params.velocity_changes_per_step) +
               " alpha=" + std::to_string(params.alpha));
      series[k].values.push_back(
          RunMode(params, sim::SimMode::kMobiEyesLazy, options)
              .AverageError());
    }
  }
  PrintTable(
      "Fig 2: LQP average result error vs objects changing velocity per step",
      "nmo", velocity_changes, series);
  return 0;
}
