// Figure 7: effect of the number of objects changing their velocity vector
// per time step (nmo) on the messaging cost.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("fig07_messaging_velocity", argc, argv);
  std::vector<double> velocity_changes = {100, 250, 500, 750, 1000};
  std::vector<double> query_counts = {100, 1000};
  std::vector<sim::SimMode> modes = {
      sim::SimMode::kNaive, sim::SimMode::kCentralOptimal,
      sim::SimMode::kMobiEyesEager, sim::SimMode::kMobiEyesLazy};
  std::vector<Series> series;
  for (double nmq : query_counts) {
    std::string suffix = " (nmq=" + std::to_string(static_cast<int>(nmq)) + ")";
    series.push_back({"Naive" + suffix, {}});
    series.push_back({"CentralOpt" + suffix, {}});
    series.push_back({"EQP" + suffix, {}});
    series.push_back({"LQP" + suffix, {}});
  }
  RunOptions options;
  options.steps = 8;

  std::vector<SweepJob> jobs;
  for (double nmo : velocity_changes) {
    for (double nmq : query_counts) {
      for (sim::SimMode mode : modes) {
        SweepJob job;
        job.params.velocity_changes_per_step = static_cast<int>(nmo);
        job.params.num_queries = static_cast<int>(nmq);
        job.mode = mode;
        job.options = options;
        job.label = "fig07 nmo=" +
                    std::to_string(job.params.velocity_changes_per_step) +
                    " nmq=" + std::to_string(job.params.num_queries) + " " +
                    sim::SimModeName(mode);
        jobs.push_back(job);
      }
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < velocity_changes.size(); ++row) {
    for (size_t column = 0; column < series.size(); ++column) {
      series[column].values.push_back(results[cell++].MessagesPerSecond());
    }
  }
  PrintTable(
      "Fig 7: messages/second vs objects changing velocity vector per step",
      "nmo", velocity_changes, series);
  return FinishBench();
}
