// Figure 7: effect of the number of objects changing their velocity vector
// per time step (nmo) on the messaging cost.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> velocity_changes = {100, 250, 500, 750, 1000};
  std::vector<double> query_counts = {100, 1000};
  std::vector<Series> series;
  for (double nmq : query_counts) {
    std::string suffix = " (nmq=" + std::to_string(static_cast<int>(nmq)) + ")";
    series.push_back({"Naive" + suffix, {}});
    series.push_back({"CentralOpt" + suffix, {}});
    series.push_back({"EQP" + suffix, {}});
    series.push_back({"LQP" + suffix, {}});
  }
  RunOptions options;
  options.steps = 8;

  for (double nmo : velocity_changes) {
    size_t column = 0;
    for (double nmq : query_counts) {
      sim::SimulationParams params;
      params.velocity_changes_per_step = static_cast<int>(nmo);
      params.num_queries = static_cast<int>(nmq);
      Progress("fig07 nmo=" + std::to_string(params.velocity_changes_per_step) +
               " nmq=" + std::to_string(params.num_queries));
      series[column++].values.push_back(
          RunMode(params, sim::SimMode::kNaive, options)
              .MessagesPerSecond());
      series[column++].values.push_back(
          RunMode(params, sim::SimMode::kCentralOptimal, options)
              .MessagesPerSecond());
      series[column++].values.push_back(
          RunMode(params, sim::SimMode::kMobiEyesEager, options)
              .MessagesPerSecond());
      series[column++].values.push_back(
          RunMode(params, sim::SimMode::kMobiEyesLazy, options)
              .MessagesPerSecond());
    }
  }
  PrintTable(
      "Fig 7: messages/second vs objects changing velocity vector per step",
      "nmo", velocity_changes, series);
  return 0;
}
