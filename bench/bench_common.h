#ifndef MOBIEYES_BENCH_BENCH_COMMON_H_
#define MOBIEYES_BENCH_BENCH_COMMON_H_

// Shared harness for the figure-reproduction benches: run one simulation
// mode over one parameter setting and print paper-style tables (one row per
// x-value, one column per series).

#include <string>
#include <vector>

#include "mobieyes/core/options.h"
#include "mobieyes/sim/simulation.h"

namespace mobieyes::bench {

struct RunOptions {
  int steps = 10;
  int warmup_steps = 2;
  bool measure_error = false;
  bool track_per_object_bytes = false;
};

// Builds, warms up and runs one simulation; returns its metrics.
sim::RunMetrics RunMode(const sim::SimulationParams& params,
                        sim::SimMode mode, const RunOptions& options = {},
                        const core::MobiEyesOptions& mobieyes = {});

struct Series {
  std::string name;
  std::vector<double> values;
};

// Prints an aligned table: header `title`, x column labeled `xlabel`, one
// column per series. Values are printed with %.6g.
void PrintTable(const std::string& title, const std::string& xlabel,
                const std::vector<double>& xs,
                const std::vector<Series>& series);

// Progress note to stderr so long sweeps show life without polluting the
// table output on stdout.
void Progress(const std::string& note);

}  // namespace mobieyes::bench

#endif  // MOBIEYES_BENCH_BENCH_COMMON_H_
