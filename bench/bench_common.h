#ifndef MOBIEYES_BENCH_BENCH_COMMON_H_
#define MOBIEYES_BENCH_BENCH_COMMON_H_

// Shared harness for the figure-reproduction benches: fan the sweep's
// (x-value, mode) cells across a worker pool, then print paper-style tables
// (one row per x-value, one column per series) and optionally a
// machine-readable JSON report.
//
// Every cell is one fully independent simulation with its own seeded RNG
// (the seed travels inside SimulationParams), so the table contents do not
// depend on the thread count: results are collected by job index, never by
// completion order. Only the wall-clock metrics (server/client seconds)
// jitter run-to-run — exactly as they already did serially.

#include <string>
#include <vector>

#include "mobieyes/core/options.h"
#include "mobieyes/obs/trace_recorder.h"
#include "mobieyes/sim/simulation.h"

namespace mobieyes::bench {

struct RunOptions {
  int steps = 10;
  int warmup_steps = 2;
  bool measure_error = false;
  bool track_per_object_bytes = false;
  // Crash recovery (MobiEyes modes): server checkpoint stride in steps
  // (0 = only the setup-time baseline checkpoint when a crash is planned)
  // and the WAL record budget between checkpoints.
  int checkpoint_stride = 0;
  size_t wal_limit = 4096;
  // Worker threads for the server's per-shard step phase (shard count
  // itself lives in MobiEyesOptions::sharding).
  int shard_threads = 1;
  // Shard transport (DESIGN.md §13): kProcess runs one daemon process per
  // shard behind the socket backplane; kInProcess is the plain path.
  sim::SimulationConfig::ShardTransport shard_transport =
      sim::SimulationConfig::ShardTransport::kInProcess;
  // Daemon binary override for kProcess (empty: auto-discovery next to the
  // running binary / $MOBIEYES_SHARDD).
  std::string shardd_path;
  // SIGKILL fault event for kProcess: kill daemon shard_kill_index at sim
  // step shard_kill_step (warmup steps count; -1 disables).
  int64_t shard_kill_step = -1;
  int shard_kill_index = 0;
  // Virtual-step RPC deadline and liveness-probe stride of the backplane
  // (defaults mirror core::SupervisorOptions).
  int backplane_timeout_steps = 4;
  int heartbeat_stride = 4;
  // Authority mode (DESIGN.md §14): daemons answer the RQI scans and the
  // router merges their digest-verified rows; requires kProcess transport.
  bool shard_authority = false;
  // Backplane chaos spec (net::ParseBackplaneFaultSpec grammar), e.g.
  // "drop=0.05,delay=0.1:2,kill=12:1,seed=7". Empty: no injected faults.
  std::string backplane_fault;
};

// Fault-injection knobs of one sweep cell (see SweepJob): the plan handed
// to the simulation and whether to run the hardened protocol variant
// (core::HardenedOptions) on top of the job's MobiEyes options.
struct FaultOptions {
  net::FaultPlan plan;
  bool harden = false;
};

// Builds, warms up and runs one simulation; returns its metrics.
sim::RunMetrics RunMode(const sim::SimulationParams& params,
                        sim::SimMode mode, const RunOptions& options = {},
                        const core::MobiEyesOptions& mobieyes = {});

// One sweep cell: an independent simulation to run.
struct SweepJob {
  sim::SimulationParams params;
  sim::SimMode mode = sim::SimMode::kMobiEyesEager;
  RunOptions options;
  core::MobiEyesOptions mobieyes;
  FaultOptions faults;
  std::string label;  // progress note, e.g. "fig03 alpha=2 EQP"
};

// Parses harness flags out of argv (unknown arguments are left alone) and
// starts the bench wall clock. Call first in main().
//   --threads=N        worker threads for RunSweep (default: hardware
//                      threads; 1 runs strictly serially)
//   --json=PATH        also write every printed table to PATH as JSON
//   --trace=PATH       record Chrome-trace spans in every sweep cell and
//                      write one merged Perfetto-loadable file to PATH
//                      (one "process" per cell, labeled by the job label)
//   --metrics-json=PATH  per-cell MetricsRegistry + per-step series report
//                      (lifecycle latency tables included); deterministic
//                      (wall-clock instruments excluded), so the file is
//                      identical for any --threads value
//   --sample-stride=N  per-step sampling stride inside each cell
//                      (default 1 when --metrics-json is given, else off)
//   --heatmap=PATH     per-cell heat-map export (uplinks, RQI scan work,
//                      installs, residency), deterministic flavor — the
//                      file is byte-identical for any --threads, --shards
//                      or --shard-threads value
//   --steps=N          override every job's measured step count (smoke runs)
//   --objects=N        override every job's object count (smoke runs)
//
// Fault-injection overrides, applied on top of every job's FaultOptions
// (a job keeps its own value for any knob the flags leave unset):
//   --drop-rate=F      message drop probability, both directions
//   --delay-steps=N    max deferred-delivery delay; pairs with --delay-rate
//                      (default 0.2 when --delay-steps is given alone)
//   --delay-rate=F     probability a surviving message is delayed
//   --dup-rate=F       probability a surviving message is duplicated
//   --outage=P:D       base stations dark D of every P steps (staggered)
//   --disconnect=R:P:D objects offline D of every P steps w.p. R
//   --seed=N           fault plan seed (workload seeds are per-job)
//   --harden           run the hardened protocol (acks, leases,
//                      reconciliation; core::HardenedOptions)
//
// Crash-recovery overrides (DESIGN.md §9):
//   --server-crash=S:R kill the server at step S, restore it from the
//                      durable store R steps later (R=0: restore within
//                      the same step, before any traffic)
//   --client-restart-rate=F  per-object per-step cold-restart probability
//   --checkpoint-stride=N    server checkpoint every N steps (0: baseline
//                      checkpoint only)
//
// Server sharding overrides (DESIGN.md §10, §13):
//   --shards=N         grid-partitioned server shards (1 = monolith)
//   --shard-threads=N  worker threads for the per-shard step phase
//   --shard-partition=rowband|hash  grid-to-shard assignment policy
//   --rebalance=off|S:T:M  online rebalancing (DESIGN.md §15): plan every
//                      S steps, act when the hottest shard exceeds T times
//                      the mean load, move at most M cells per rebalance
//                      ("off", the default, is the byte-identical path)
//   --shard-transport=inproc|process  run shards in-process (default) or
//                      as daemon processes behind the socket backplane
//   --shardd=PATH      shard daemon binary for --shard-transport=process
//   --shard-kill=S:K   SIGKILL shard K's daemon at sim step S (process
//                      transport; warmup steps count)
//   --backplane-timeout-steps=N  virtual-step RPC deadline before a daemon
//                      is declared dead (process transport)
//   --heartbeat-stride=N  liveness-probe stride on idle backplane links
//   --shard-authority  daemons execute the RQI scans; the router merges
//                      digest-verified rows (process transport)
//   --backplane-fault=SPEC  seeded backplane chaos plan, e.g.
//                      drop=0.05,delay=0.1:2,trunc=0.01,kill=12:1,seed=7
void InitBench(const std::string& name, int argc, char** argv);

// Worker thread count RunSweep will use.
int BenchThreads();

// Runs every job across the worker pool; results indexed like `jobs`.
// Honors the observability flags above: cells run with metrics/tracing
// enabled and their outputs are recorded (tagged with the job label) for
// FinishBench to write.
std::vector<sim::RunMetrics> RunSweep(const std::vector<SweepJob>& jobs);

// Same, with an explicit worker count (1 = strictly serial). The counting
// metrics of each cell depend only on its seed, never on `threads`.
std::vector<sim::RunMetrics> RunSweep(const std::vector<SweepJob>& jobs,
                                      int threads);

// Observability toggles for RunSweepObserved (the flag-independent core
// also used by tests).
struct SweepObsOptions {
  bool metrics = false;
  bool trace = false;
  int sample_stride = 0;
  // Per-cell heat-map accumulation (DESIGN.md §12); the deterministic
  // export lands in SweepCellResult::heatmap_json.
  bool heatmap = false;
  // Lifecycle latency tracking; its tables ride inside metrics_json.
  bool lifecycle = false;
  // Capture each cell's final per-query result sets (sorted, in installed
  // query order) into SweepCellResult::query_results. Used by the
  // determinism tests and the shard sweep to compare runs structurally.
  bool capture_results = false;
};

// One sweep cell's observability output.
struct SweepCellResult {
  sim::RunMetrics metrics;
  // Simulation::ObservabilityJson(include_timing=false): deterministic for
  // a given seed, identical across thread counts. Empty when !obs.metrics
  // and the sampler is off.
  std::string metrics_json;
  // Trace events with pid = job index. Empty when !obs.trace.
  std::vector<obs::TraceEvent> trace_events;
  // HeatMap::ToJson(include_layout_dependent=false): deterministic for a
  // given seed, byte-identical across thread and shard counts. Empty when
  // !obs.heatmap.
  std::string heatmap_json;
  // Final result set of each installed query, sorted by object id, indexed
  // like Simulation::installed_queries(). Empty when !obs.capture_results.
  std::vector<std::vector<ObjectId>> query_results;
};

// RunSweep with explicit observability; results indexed like `jobs`.
std::vector<SweepCellResult> RunSweepObserved(
    const std::vector<SweepJob>& jobs, int threads,
    const SweepObsOptions& obs);

// Applies the harness flag overrides (--steps/--objects, fault-injection,
// crash-recovery and sharding flags) to one job, exactly as RunSweep does
// before dispatch. For benches that build jobs themselves and call
// RunSweepObserved directly but still want the smoke-run flags to work.
SweepJob ApplyFlagOverrides(SweepJob job);

struct Series {
  std::string name;
  std::vector<double> values;
};

// Prints an aligned table: header `title`, x column labeled `xlabel`, one
// column per series. Values are printed with %.6g. The table is also
// recorded for the --json report.
void PrintTable(const std::string& title, const std::string& xlabel,
                const std::vector<double>& xs,
                const std::vector<Series>& series);

// Writes the JSON report if --json was given. Returns 0 (the exit status),
// so benches can end with `return FinishBench();`.
int FinishBench();

// Progress note to stderr so long sweeps show life without polluting the
// table output on stdout.
void Progress(const std::string& note);

}  // namespace mobieyes::bench

#endif  // MOBIEYES_BENCH_BENCH_COMMON_H_
