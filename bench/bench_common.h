#ifndef MOBIEYES_BENCH_BENCH_COMMON_H_
#define MOBIEYES_BENCH_BENCH_COMMON_H_

// Shared harness for the figure-reproduction benches: fan the sweep's
// (x-value, mode) cells across a worker pool, then print paper-style tables
// (one row per x-value, one column per series) and optionally a
// machine-readable JSON report.
//
// Every cell is one fully independent simulation with its own seeded RNG
// (the seed travels inside SimulationParams), so the table contents do not
// depend on the thread count: results are collected by job index, never by
// completion order. Only the wall-clock metrics (server/client seconds)
// jitter run-to-run — exactly as they already did serially.

#include <string>
#include <vector>

#include "mobieyes/core/options.h"
#include "mobieyes/sim/simulation.h"

namespace mobieyes::bench {

struct RunOptions {
  int steps = 10;
  int warmup_steps = 2;
  bool measure_error = false;
  bool track_per_object_bytes = false;
};

// Builds, warms up and runs one simulation; returns its metrics.
sim::RunMetrics RunMode(const sim::SimulationParams& params,
                        sim::SimMode mode, const RunOptions& options = {},
                        const core::MobiEyesOptions& mobieyes = {});

// One sweep cell: an independent simulation to run.
struct SweepJob {
  sim::SimulationParams params;
  sim::SimMode mode = sim::SimMode::kMobiEyesEager;
  RunOptions options;
  core::MobiEyesOptions mobieyes;
  std::string label;  // progress note, e.g. "fig03 alpha=2 EQP"
};

// Parses harness flags out of argv (unknown arguments are left alone) and
// starts the bench wall clock. Call first in main().
//   --threads=N   worker threads for RunSweep (default: hardware threads;
//                 1 runs strictly serially on the calling thread)
//   --json=PATH   also write every printed table to PATH as JSON
void InitBench(const std::string& name, int argc, char** argv);

// Worker thread count RunSweep will use.
int BenchThreads();

// Runs every job across the worker pool; results indexed like `jobs`.
std::vector<sim::RunMetrics> RunSweep(const std::vector<SweepJob>& jobs);

// Same, with an explicit worker count (1 = strictly serial). The counting
// metrics of each cell depend only on its seed, never on `threads`.
std::vector<sim::RunMetrics> RunSweep(const std::vector<SweepJob>& jobs,
                                      int threads);

struct Series {
  std::string name;
  std::vector<double> values;
};

// Prints an aligned table: header `title`, x column labeled `xlabel`, one
// column per series. Values are printed with %.6g. The table is also
// recorded for the --json report.
void PrintTable(const std::string& title, const std::string& xlabel,
                const std::vector<double>& xs,
                const std::vector<Series>& series);

// Writes the JSON report if --json was given. Returns 0 (the exit status),
// so benches can end with `return FinishBench();`.
int FinishBench();

// Progress note to stderr so long sweeps show life without polluting the
// table output on stdout.
void Progress(const std::string& note);

}  // namespace mobieyes::bench

#endif  // MOBIEYES_BENCH_BENCH_COMMON_H_
