// Figure 13: effect of the safe period optimization on the average query
// processing load of a moving object (seconds spent evaluating the LQT per
// object per step). Helps at large alpha (bigger monitoring regions, more
// distant objects), slightly hurts at alpha = 1.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> alphas = {1, 2, 4, 8, 16};
  std::vector<Series> series = {{"no-safe-period", {}},
                                {"safe-period", {}},
                                {"evals/step/obj (sp)", {}},
                                {"skips/step/obj (sp)", {}}};
  RunOptions options;
  options.steps = 8;

  for (double alpha : alphas) {
    sim::SimulationParams params;
    params.alpha = alpha;
    Progress("fig13 alpha=" + std::to_string(alpha));

    core::MobiEyesOptions plain;
    plain.enable_safe_period = false;
    sim::RunMetrics without =
        RunMode(params, sim::SimMode::kMobiEyesEager, options, plain);
    core::MobiEyesOptions with_sp;
    with_sp.enable_safe_period = true;
    sim::RunMetrics with =
        RunMode(params, sim::SimMode::kMobiEyesEager, options, with_sp);

    series[0].values.push_back(without.ClientProcessingPerStep());
    series[1].values.push_back(with.ClientProcessingPerStep());
    double denom = static_cast<double>(with.steps) *
                   static_cast<double>(with.objects);
    series[2].values.push_back(static_cast<double>(with.queries_evaluated) /
                               denom);
    series[3].values.push_back(static_cast<double>(with.safe_period_skips) /
                               denom);
  }
  PrintTable(
      "Fig 13: per-object query processing load (s/step) vs alpha, with and "
      "without safe periods",
      "alpha", alphas, series);
  return 0;
}
