// Figure 13: effect of the safe period optimization on the average query
// processing load of a moving object (seconds spent evaluating the LQT per
// object per step). Helps at large alpha (bigger monitoring regions, more
// distant objects), slightly hurts at alpha = 1.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("fig13_safe_period", argc, argv);
  std::vector<double> alphas = {1, 2, 4, 8, 16};
  std::vector<Series> series = {{"no-safe-period", {}},
                                {"safe-period", {}},
                                {"evals/step/obj (sp)", {}},
                                {"skips/step/obj (sp)", {}}};
  RunOptions options;
  options.steps = 8;

  core::MobiEyesOptions plain;
  plain.enable_safe_period = false;
  core::MobiEyesOptions with_sp;
  with_sp.enable_safe_period = true;

  // Two cells per alpha: safe periods off (even indices) and on (odd).
  std::vector<SweepJob> jobs;
  for (double alpha : alphas) {
    for (bool safe_period : {false, true}) {
      SweepJob job;
      job.params.alpha = alpha;
      job.options = options;
      job.mobieyes = safe_period ? with_sp : plain;
      job.label = "fig13 alpha=" + std::to_string(alpha) +
                  (safe_period ? " safe-period" : " no-safe-period");
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < alphas.size(); ++row) {
    sim::RunMetrics without = results[cell++];
    sim::RunMetrics with = results[cell++];
    series[0].values.push_back(without.ClientProcessingPerStep());
    series[1].values.push_back(with.ClientProcessingPerStep());
    double denom = static_cast<double>(with.steps) *
                   static_cast<double>(with.objects);
    series[2].values.push_back(static_cast<double>(with.queries_evaluated) /
                               denom);
    series[3].values.push_back(static_cast<double>(with.safe_period_skips) /
                               denom);
  }
  PrintTable(
      "Fig 13: per-object query processing load (s/step) vs alpha, with and "
      "without safe periods",
      "alpha", alphas, series);
  return FinishBench();
}
