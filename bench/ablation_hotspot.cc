// Ablation: spatial skew. The paper evaluates a uniform population; this
// sweep contrasts it with a hotspot (city-like) distribution, where
// monitoring regions pile onto the same cells: LQT sizes and messaging
// concentrate, stressing the grouping and safe-period optimizations.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> query_counts = {100, 400, 1000};
  std::vector<Series> series = {{"uniform msgs/s", {}},
                                {"hotspot msgs/s", {}},
                                {"uniform avg LQT", {}},
                                {"hotspot avg LQT", {}},
                                {"uniform server s/step", {}},
                                {"hotspot server s/step", {}}};
  RunOptions options;
  options.steps = 8;

  for (double nmq : query_counts) {
    sim::SimulationParams uniform;
    uniform.num_queries = static_cast<int>(nmq);
    sim::SimulationParams hotspot = uniform;
    hotspot.object_distribution = sim::ObjectDistribution::kHotspot;
    Progress("ablation_hotspot nmq=" + std::to_string(uniform.num_queries));

    sim::RunMetrics flat =
        RunMode(uniform, sim::SimMode::kMobiEyesEager, options);
    sim::RunMetrics skewed =
        RunMode(hotspot, sim::SimMode::kMobiEyesEager, options);
    series[0].values.push_back(flat.MessagesPerSecond());
    series[1].values.push_back(skewed.MessagesPerSecond());
    series[2].values.push_back(flat.AverageLqtSize());
    series[3].values.push_back(skewed.AverageLqtSize());
    series[4].values.push_back(flat.ServerLoadPerStep());
    series[5].values.push_back(skewed.ServerLoadPerStep());
  }
  PrintTable("Ablation: uniform vs hotspot object distribution (EQP)",
             "num_queries", query_counts, series);
  return 0;
}
