// Ablation: spatial skew. The paper evaluates a uniform population; this
// sweep contrasts it with a hotspot (city-like) distribution, where
// monitoring regions pile onto the same cells: LQT sizes and messaging
// concentrate, stressing the grouping and safe-period optimizations.
//
// Besides the paper-style table, the bench machine-checks the skew with
// the heat-map layer (DESIGN.md §12): the hottest 10% of grid cells must
// carry a strictly larger share of uplinks and residency under the hotspot
// distribution than under the uniform one (exit 1 otherwise). Run with
// --heatmap=PATH to export every sweep cell's heat map as JSON.
//
// A second machine check exercises online rebalancing (DESIGN.md §15):
// the same hotspot workload runs sharded twice, static vs --rebalance,
// and the rebalanced run must (a) shrink the hottest shard's share of
// routed uplinks below the static run's and (b) return exactly the same
// per-query result sets (the partition is an implementation detail; the
// protocol answer may not change). Exit 1 on either failure.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mobieyes/core/rebalance.h"
#include "mobieyes/core/server.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

namespace {

// Share of a channel's all-time mass (totals plus the open window) landing
// in the hottest `band` fraction of grid cells.
double TopBandShare(const obs::HeatMap& map, obs::HeatMap::Channel channel,
                    double band) {
  std::vector<uint64_t> cells;
  cells.reserve(static_cast<size_t>(map.cell_count()));
  uint64_t sum = 0;
  for (int32_t j = 0; j < map.rows(); ++j) {
    for (int32_t i = 0; i < map.cols(); ++i) {
      uint64_t value = map.total(channel, i, j) + map.window(channel, i, j);
      cells.push_back(value);
      sum += value;
    }
  }
  if (sum == 0) return 0.0;
  std::sort(cells.begin(), cells.end(), std::greater<uint64_t>());
  size_t top = std::max<size_t>(
      1, static_cast<size_t>(band * static_cast<double>(cells.size())));
  uint64_t top_sum = 0;
  for (size_t k = 0; k < top && k < cells.size(); ++k) top_sum += cells[k];
  return static_cast<double>(top_sum) / static_cast<double>(sum);
}

// Runs one nmq=400 cell with heat maps enabled and returns the simulation
// (which owns the heat map). Window 4 so residency snapshots land inside
// short smoke runs too.
Result<std::unique_ptr<sim::Simulation>> RunHeatCell(
    sim::ObjectDistribution distribution) {
  SweepJob job;
  job.params.num_queries = 400;
  job.params.object_distribution = distribution;
  job.options.steps = 8;
  job = ApplyFlagOverrides(job);
  sim::SimulationConfig config;
  config.params = job.params;
  config.mode = job.mode;
  config.mobieyes = job.mobieyes;
  config.warmup_steps = job.options.warmup_steps;
  config.shard_threads = job.options.shard_threads;
  config.obs.enable_heatmap = true;
  config.obs.heatmap_window = 4;
  auto simulation = sim::Simulation::Make(config);
  if (simulation.ok()) (*simulation)->Run(job.options.steps);
  return simulation;
}

// Runs one sharded hotspot cell (nmq=400, 4 shards unless --shards says
// otherwise) and returns the simulation, so the caller can read per-shard
// stats and result sets. `rebalance_spec` is "off" for the static run.
Result<std::unique_ptr<sim::Simulation>> RunShardCell(
    const std::string& rebalance_spec) {
  SweepJob job;
  job.params.num_queries = 400;
  job.params.object_distribution = sim::ObjectDistribution::kHotspot;
  job.options.steps = 24;
  job.mobieyes.sharding.num_shards = 4;
  job = ApplyFlagOverrides(job);
  // The spec is this cell's identity, not a harness knob: force it after
  // the flag overrides so --rebalance on the command line cannot turn the
  // static control into a second rebalanced run.
  Status spec_status =
      core::ParseRebalanceSpec(rebalance_spec, &job.mobieyes.sharding);
  if (!spec_status.ok()) return spec_status;
  sim::SimulationConfig config;
  config.params = job.params;
  config.mode = job.mode;
  config.mobieyes = job.mobieyes;
  config.warmup_steps = job.options.warmup_steps;
  config.shard_threads = job.options.shard_threads;
  auto simulation = sim::Simulation::Make(config);
  if (simulation.ok()) (*simulation)->Run(job.options.steps);
  return simulation;
}

// Hottest shard's share of all routed uplinks.
double TopShardShare(sim::Simulation* simulation) {
  const core::ShardRouter& router = simulation->server()->router();
  uint64_t sum = 0;
  uint64_t top = 0;
  for (int k = 0; k < router.num_shards(); ++k) {
    uint64_t routed = router.shard(k).stats().uplinks_routed;
    sum += routed;
    top = std::max(top, routed);
  }
  return sum > 0 ? static_cast<double>(top) / static_cast<double>(sum) : 0.0;
}

// Final per-query result sets, sorted, in installed-query order.
std::vector<std::vector<ObjectId>> ResultSets(sim::Simulation* simulation) {
  std::vector<std::vector<ObjectId>> results;
  core::MobiEyesServer* server = simulation->server();
  for (QueryId qid : simulation->installed_queries()) {
    std::vector<ObjectId> sorted;
    const core::MobiEyesServer::SqtEntry* entry =
        server == nullptr ? nullptr : server->FindQuery(qid);
    if (entry != nullptr) {
      sorted.assign(entry->result.begin(), entry->result.end());
      std::sort(sorted.begin(), sorted.end());
    }
    results.push_back(std::move(sorted));
  }
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  InitBench("ablation_hotspot", argc, argv);
  std::vector<double> query_counts = {100, 400, 1000};
  std::vector<Series> series = {{"uniform msgs/s", {}},
                                {"hotspot msgs/s", {}},
                                {"uniform avg LQT", {}},
                                {"hotspot avg LQT", {}},
                                {"uniform server s/step", {}},
                                {"hotspot server s/step", {}}};
  RunOptions options;
  options.steps = 8;

  // Two cells per row: uniform (even indices) and hotspot (odd).
  std::vector<SweepJob> jobs;
  for (double nmq : query_counts) {
    for (sim::ObjectDistribution distribution :
         {sim::ObjectDistribution::kUniform,
          sim::ObjectDistribution::kHotspot}) {
      SweepJob job;
      job.params.num_queries = static_cast<int>(nmq);
      job.params.object_distribution = distribution;
      job.options = options;
      job.label =
          "ablation_hotspot nmq=" + std::to_string(job.params.num_queries) +
          (distribution == sim::ObjectDistribution::kHotspot ? " hotspot"
                                                             : " uniform");
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < query_counts.size(); ++row) {
    sim::RunMetrics flat = results[cell++];
    sim::RunMetrics skewed = results[cell++];
    series[0].values.push_back(flat.MessagesPerSecond());
    series[1].values.push_back(skewed.MessagesPerSecond());
    series[2].values.push_back(flat.AverageLqtSize());
    series[3].values.push_back(skewed.AverageLqtSize());
    series[4].values.push_back(flat.ServerLoadPerStep());
    series[5].values.push_back(skewed.ServerLoadPerStep());
  }
  PrintTable("Ablation: uniform vs hotspot object distribution (EQP)",
             "num_queries", query_counts, series);

  // Heat-map concentration check (nmq=400): the hottest 10% of cells must
  // carry a strictly larger share of uplinks and residency under the
  // hotspot distribution.
  auto flat_sim = RunHeatCell(sim::ObjectDistribution::kUniform);
  auto hot_sim = RunHeatCell(sim::ObjectDistribution::kHotspot);
  if (!flat_sim.ok() || !hot_sim.ok()) {
    std::fprintf(stderr, "heat-map cells failed to run\n");
    return 1;
  }
  (*flat_sim)->FlushHeatmap();
  (*hot_sim)->FlushHeatmap();
  const obs::HeatMap& flat_map = *(*flat_sim)->heatmap();
  const obs::HeatMap& hot_map = *(*hot_sim)->heatmap();
  bool ok = true;
  std::printf("\n=== Heat-map concentration: top-10%% cell share ===\n");
  for (obs::HeatMap::Channel channel :
       {obs::HeatMap::kUplinks, obs::HeatMap::kResidency}) {
    double flat_share = TopBandShare(flat_map, channel, 0.1);
    double hot_share = TopBandShare(hot_map, channel, 0.1);
    bool dominates = hot_share > flat_share;
    std::printf("%-10s  uniform %.3f  hotspot %.3f  %s\n",
                obs::HeatMap::ChannelName(channel), flat_share, hot_share,
                dominates ? "OK" : "FAIL");
    ok = ok && dominates;
  }
  std::printf("\nhotspot residency heat map:\n%s",
              hot_map.ToAscii(obs::HeatMap::kResidency).c_str());
  if (!ok) {
    std::fprintf(stderr,
                 "[bench] FAIL: hotspot heat-map band does not dominate\n");
    return 1;
  }

  // Rebalance check (DESIGN.md §15): static vs rebalanced partition on the
  // sharded hotspot workload.
  auto static_sim = RunShardCell("off");
  auto rebal_sim = RunShardCell("2:1.05:16");
  if (!static_sim.ok() || !rebal_sim.ok()) {
    std::fprintf(stderr, "rebalance cells failed to run\n");
    return 1;
  }
  double static_share = TopShardShare(static_sim->get());
  double rebal_share = TopShardShare(rebal_sim->get());
  sim::RunMetrics rebal_metrics = (*rebal_sim)->metrics();
  std::printf("\n=== Rebalancing: hottest shard's uplink share ===\n");
  std::printf("static    %.3f\n", static_share);
  std::printf(
      "rebalanced %.3f  (epoch %llu, %llu events, %llu cells moved, "
      "%llu focals + %llu RQI ids migrated)\n",
      rebal_share,
      static_cast<unsigned long long>(rebal_metrics.rebalance_epoch),
      static_cast<unsigned long long>(rebal_metrics.rebalance_events),
      static_cast<unsigned long long>(rebal_metrics.rebalance_cells_moved),
      static_cast<unsigned long long>(rebal_metrics.rebalance_focals_moved),
      static_cast<unsigned long long>(rebal_metrics.rebalance_rqi_ids_moved));
  if (!(rebal_share < static_share)) {
    std::fprintf(stderr,
                 "[bench] FAIL: rebalancing did not shrink the hottest "
                 "shard's load share (%.3f vs %.3f static)\n",
                 rebal_share, static_share);
    return 1;
  }
  if (ResultSets(static_sim->get()) != ResultSets(rebal_sim->get())) {
    std::fprintf(stderr,
                 "[bench] FAIL: rebalanced result sets differ from the "
                 "static partition's\n");
    return 1;
  }
  std::printf("result sets identical across partitions: OK\n");
  int status = FinishBench();
  return status;
}
