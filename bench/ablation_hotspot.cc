// Ablation: spatial skew. The paper evaluates a uniform population; this
// sweep contrasts it with a hotspot (city-like) distribution, where
// monitoring regions pile onto the same cells: LQT sizes and messaging
// concentrate, stressing the grouping and safe-period optimizations.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("ablation_hotspot", argc, argv);
  std::vector<double> query_counts = {100, 400, 1000};
  std::vector<Series> series = {{"uniform msgs/s", {}},
                                {"hotspot msgs/s", {}},
                                {"uniform avg LQT", {}},
                                {"hotspot avg LQT", {}},
                                {"uniform server s/step", {}},
                                {"hotspot server s/step", {}}};
  RunOptions options;
  options.steps = 8;

  // Two cells per row: uniform (even indices) and hotspot (odd).
  std::vector<SweepJob> jobs;
  for (double nmq : query_counts) {
    for (sim::ObjectDistribution distribution :
         {sim::ObjectDistribution::kUniform,
          sim::ObjectDistribution::kHotspot}) {
      SweepJob job;
      job.params.num_queries = static_cast<int>(nmq);
      job.params.object_distribution = distribution;
      job.options = options;
      job.label =
          "ablation_hotspot nmq=" + std::to_string(job.params.num_queries) +
          (distribution == sim::ObjectDistribution::kHotspot ? " hotspot"
                                                             : " uniform");
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < query_counts.size(); ++row) {
    sim::RunMetrics flat = results[cell++];
    sim::RunMetrics skewed = results[cell++];
    series[0].values.push_back(flat.MessagesPerSecond());
    series[1].values.push_back(skewed.MessagesPerSecond());
    series[2].values.push_back(flat.AverageLqtSize());
    series[3].values.push_back(skewed.AverageLqtSize());
    series[4].values.push_back(flat.ServerLoadPerStep());
    series[5].values.push_back(skewed.ServerLoadPerStep());
  }
  PrintTable("Ablation: uniform vs hotspot object distribution (EQP)",
             "num_queries", query_counts, series);
  return FinishBench();
}
