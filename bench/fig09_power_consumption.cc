// Figure 9: per-object power consumption due to communication (mW) as a
// function of the number of queries, under the GPRS radio model of §5.3
// (~82 uJ/bit transmit, ~4.3 uJ/bit receive). The naive scheme is worst;
// central-optimal eventually beats MobiEyes at large query counts because
// broadcast reception charges every covered object.

#include <string>
#include <vector>

#include "bench_common.h"
#include "mobieyes/net/energy.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> query_counts = {100, 250, 500, 750, 1000};
  std::vector<Series> series = {{"Naive", {}},
                                {"CentralOpt", {}},
                                {"MobiEyes-EQP", {}}};
  RunOptions options;
  options.steps = 8;
  options.track_per_object_bytes = true;
  net::RadioEnergyModel radio;

  for (double nmq : query_counts) {
    sim::SimulationParams params;
    params.num_queries = static_cast<int>(nmq);
    Progress("fig09 nmq=" + std::to_string(params.num_queries));
    series[0].values.push_back(
        RunMode(params, sim::SimMode::kNaive, options)
            .AveragePowerMilliwatts(radio));
    series[1].values.push_back(
        RunMode(params, sim::SimMode::kCentralOptimal, options)
            .AveragePowerMilliwatts(radio));
    series[2].values.push_back(
        RunMode(params, sim::SimMode::kMobiEyesEager, options)
            .AveragePowerMilliwatts(radio));
  }
  PrintTable(
      "Fig 9: per-object communication power (mW) vs number of queries",
      "num_queries", query_counts, series);
  return 0;
}
