// Figure 9: per-object power consumption due to communication (mW) as a
// function of the number of queries, under the GPRS radio model of §5.3
// (~82 uJ/bit transmit, ~4.3 uJ/bit receive). The naive scheme is worst;
// central-optimal eventually beats MobiEyes at large query counts because
// broadcast reception charges every covered object.

#include <string>
#include <vector>

#include "bench_common.h"
#include "mobieyes/net/energy.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("fig09_power_consumption", argc, argv);
  std::vector<double> query_counts = {100, 250, 500, 750, 1000};
  std::vector<sim::SimMode> modes = {sim::SimMode::kNaive,
                                     sim::SimMode::kCentralOptimal,
                                     sim::SimMode::kMobiEyesEager};
  std::vector<Series> series = {{"Naive", {}},
                                {"CentralOpt", {}},
                                {"MobiEyes-EQP", {}}};
  RunOptions options;
  options.steps = 8;
  options.track_per_object_bytes = true;
  net::RadioEnergyModel radio;

  std::vector<SweepJob> jobs;
  for (double nmq : query_counts) {
    for (sim::SimMode mode : modes) {
      SweepJob job;
      job.params.num_queries = static_cast<int>(nmq);
      job.mode = mode;
      job.options = options;
      job.label = "fig09 nmq=" + std::to_string(job.params.num_queries) + " " +
                  sim::SimModeName(mode);
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < query_counts.size(); ++row) {
    for (size_t s = 0; s < series.size(); ++s) {
      series[s].values.push_back(
          results[cell++].AveragePowerMilliwatts(radio));
    }
  }
  PrintTable(
      "Fig 9: per-object communication power (mW) vs number of queries",
      "num_queries", query_counts, series);
  return FinishBench();
}
