// Microbenchmarks for the R*-tree substrate (google-benchmark): insert,
// update and search costs that drive the centralized baselines' server load.

#include <benchmark/benchmark.h>

#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/rtree/rstar_tree.h"

namespace {

using mobieyes::Rng;
using mobieyes::geo::Point;
using mobieyes::geo::Rect;
using mobieyes::rtree::RStarTree;

std::vector<Rect> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> rects;
  rects.reserve(n);
  for (int k = 0; k < n; ++k) {
    rects.push_back(
        Rect{rng.NextDouble(0, 316), rng.NextDouble(0, 316), 0, 0});
  }
  return rects;
}

void BM_RStarInsert(benchmark::State& state) {
  auto rects = RandomPoints(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    RStarTree tree;
    for (size_t k = 0; k < rects.size(); ++k) {
      tree.Insert(rects[k], k);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RStarInsert)->Arg(1000)->Arg(10000);

void BM_RStarUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto rects = RandomPoints(n, 2);
  RStarTree tree;
  for (int k = 0; k < n; ++k) tree.Insert(rects[k], k);
  Rng rng(3);
  for (auto _ : state) {
    int k = static_cast<int>(rng.NextUint64(n));
    Rect next{rng.NextDouble(0, 316), rng.NextDouble(0, 316), 0, 0};
    benchmark::DoNotOptimize(tree.Update(rects[k], next, k).ok());
    rects[k] = next;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RStarUpdate)->Arg(1000)->Arg(10000);

void BM_RStarRangeSearch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto rects = RandomPoints(n, 4);
  RStarTree tree;
  for (int k = 0; k < n; ++k) tree.Insert(rects[k], k);
  Rng rng(5);
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    Rect query{rng.NextDouble(0, 300), rng.NextDouble(0, 300), 10, 10};
    tree.SearchIntersects(query, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RStarRangeSearch)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
