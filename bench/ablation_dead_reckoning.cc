// Ablation: dead-reckoning threshold Δ (§3.4). Small Δ keeps predictions
// tight (low result error) at the price of frequent velocity-change reports
// and their broadcasts; large Δ trades accuracy for traffic. The paper does
// not fix Δ; this sweep documents the choice of the repository default.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> deltas = {0.05, 0.1, 0.2, 0.5, 1.0, 2.0};
  std::vector<Series> series = {{"msgs/s", {}},
                                {"uplink msgs/s", {}},
                                {"avg error", {}}};
  RunOptions options;
  options.steps = 8;
  options.measure_error = true;

  for (double delta : deltas) {
    sim::SimulationParams params;
    params.num_objects = 2000;
    params.num_queries = 200;
    params.velocity_changes_per_step = 200;
    params.dead_reckoning_threshold = delta;
    Progress("ablation_delta delta=" + std::to_string(delta));
    sim::RunMetrics metrics =
        RunMode(params, sim::SimMode::kMobiEyesEager, options);
    series[0].values.push_back(metrics.MessagesPerSecond());
    series[1].values.push_back(metrics.UplinkMessagesPerSecond());
    series[2].values.push_back(metrics.AverageError());
  }
  PrintTable("Ablation: dead-reckoning threshold (EQP, 2000 objects)",
             "delta_miles", deltas, series);
  return 0;
}
