// Ablation: dead-reckoning threshold Δ (§3.4). Small Δ keeps predictions
// tight (low result error) at the price of frequent velocity-change reports
// and their broadcasts; large Δ trades accuracy for traffic. The paper does
// not fix Δ; this sweep documents the choice of the repository default.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("ablation_dead_reckoning", argc, argv);
  std::vector<double> deltas = {0.05, 0.1, 0.2, 0.5, 1.0, 2.0};
  std::vector<Series> series = {{"msgs/s", {}},
                                {"uplink msgs/s", {}},
                                {"avg error", {}}};
  RunOptions options;
  options.steps = 8;
  options.measure_error = true;

  std::vector<SweepJob> jobs;
  for (double delta : deltas) {
    SweepJob job;
    job.params.num_objects = 2000;
    job.params.num_queries = 200;
    job.params.velocity_changes_per_step = 200;
    job.params.dead_reckoning_threshold = delta;
    job.options = options;
    job.label = "ablation_delta delta=" + std::to_string(delta);
    jobs.push_back(job);
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  for (const sim::RunMetrics& metrics : results) {
    series[0].values.push_back(metrics.MessagesPerSecond());
    series[1].values.push_back(metrics.UplinkMessagesPerSecond());
    series[2].values.push_back(metrics.AverageError());
  }
  PrintTable("Ablation: dead-reckoning threshold (EQP, 2000 objects)",
             "delta_miles", deltas, series);
  return FinishBench();
}
