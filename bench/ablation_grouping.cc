// Ablation: query grouping (§4.1). Measures broadcast and total messaging
// cost with grouping on vs off while the query-to-focal skew grows (a small
// object pool makes many queries share a focal object, which is exactly the
// situation grouping targets).

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("ablation_grouping", argc, argv);
  std::vector<double> query_counts = {100, 250, 500, 1000};
  std::vector<Series> series = {{"grouped msgs/s", {}},
                                {"ungrouped msgs/s", {}},
                                {"grouped broadcasts", {}},
                                {"ungrouped broadcasts", {}}};
  RunOptions options;
  options.steps = 8;

  core::MobiEyesOptions grouped;
  grouped.enable_query_grouping = true;
  core::MobiEyesOptions ungrouped;
  ungrouped.enable_query_grouping = false;

  // Two cells per row: grouping on (even indices) and off (odd).
  std::vector<SweepJob> jobs;
  for (double nmq : query_counts) {
    for (bool grouping : {true, false}) {
      SweepJob job;
      job.params.num_objects = 1000;  // small pool -> skewed focal distribution
      job.params.velocity_changes_per_step = 100;
      job.params.num_queries = static_cast<int>(nmq);
      job.options = options;
      job.mobieyes = grouping ? grouped : ungrouped;
      job.label = "ablation_grouping nmq=" +
                  std::to_string(job.params.num_queries) +
                  (grouping ? " grouped" : " ungrouped");
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < query_counts.size(); ++row) {
    sim::RunMetrics with = results[cell++];
    sim::RunMetrics without = results[cell++];
    series[0].values.push_back(with.MessagesPerSecond());
    series[1].values.push_back(without.MessagesPerSecond());
    series[2].values.push_back(
        static_cast<double>(with.network.broadcast_messages));
    series[3].values.push_back(
        static_cast<double>(without.network.broadcast_messages));
  }
  PrintTable("Ablation: query grouping under focal skew (1000 objects)",
             "num_queries", query_counts, series);
  return FinishBench();
}
