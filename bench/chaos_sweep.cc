// Backplane chaos harness (DESIGN.md §14): authoritative shard daemons
// under injected backplane faults. Every cell runs the hardened workload
// over the process transport with --shard-authority, subjecting the
// supervisor-daemon links to a seeded BackplaneFaultPlan (frame drops,
// delivery delays, truncations, bit-flips, scheduled SIGKILLs), and the
// sweep reports the recovery picture: oracle agreement, dropped uplinks,
// failovers/cutovers, chaos injections and where the RQI scans were served.
//
// The robustness contract under test: chaos corrupts or kills the
// backplane, never the answer. The warm local mirror serves any scan a
// daemon cannot answer in time, so no step blocks and no uplink is
// dropped; digest-verified scan results keep the merged rows
// byte-identical to the in-process path.
//
// Gate flags for CI (exit 1 on violation):
//   --require-reconverge   fail unless every cell matches the in-process
//                          baseline's result sets, reaches the agreement
//                          floor and drops zero uplinks
//   --min-agreement=X      agreement floor for the gate (default 0.95)
//
// Exits 0 with a note when mobieyes_shardd is not discoverable (static
// analysis / unusual build layouts): the chaos cells need real daemons.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mobieyes/core/shard_supervisor.h"

using namespace mobieyes;         // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

namespace {

struct ChaosSpec {
  const char* name;
  const char* fault;  // ParseBackplaneFaultSpec grammar; "" = fault-free
};

// The chaos matrix: each entry stresses a different failure surface of the
// authority protocol. Kill steps land mid-run (warmup steps count).
const ChaosSpec kSpecs[] = {
    {"clean", ""},
    {"drop", "drop=0.15,seed=7"},
    {"delay", "delay=0.25:2,seed=7"},
    {"corrupt", "trunc=0.05,flip=0.05,seed=7"},
    {"kill", "kill=8:1,seed=7"},
    {"storm", "drop=0.1,delay=0.1:2,trunc=0.02,flip=0.02,kill=10:0,seed=7"},
};

SweepJob MakeJob(int shards) {
  SweepJob job;
  // fault_sweep's mid-size workload: big enough to exercise handoffs and
  // reconciliation, small enough that six chaos cells finish quickly.
  job.params.num_objects = 2000;
  job.params.num_queries = 200;
  job.params.velocity_changes_per_step = 200;
  job.mode = sim::SimMode::kMobiEyesEager;
  job.options.steps = 20;
  job.options.measure_error = true;
  job.faults.harden = true;
  job.mobieyes.sharding.num_shards = shards;
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  InitBench("chaos_sweep", argc, argv);
  bool require_reconverge = false;
  double min_agreement = 0.95;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--require-reconverge") == 0) {
      require_reconverge = true;
    } else if (std::strncmp(argv[k], "--min-agreement=", 16) == 0) {
      min_agreement = std::atof(argv[k] + 16);
    }
  }

  if (core::ShardSupervisor::FindShardd("").empty()) {
    std::fprintf(stderr,
                 "[chaos_sweep] mobieyes_shardd not found; nothing to "
                 "stress\n");
    return FinishBench();
  }

  SweepObsOptions obs;
  obs.capture_results = true;

  constexpr int kShards = 4;
  // In-process baseline: the byte-identity reference every chaos cell must
  // still reproduce.
  SweepJob baseline = ApplyFlagOverrides(MakeJob(kShards));
  baseline.label = "chaos_sweep baseline inproc";
  std::vector<SweepCellResult> base_cells =
      RunSweepObserved({baseline}, 1, obs);

  std::vector<SweepJob> jobs;
  for (const ChaosSpec& spec : kSpecs) {
    SweepJob job = ApplyFlagOverrides(MakeJob(kShards));
    job.options.shard_transport =
        sim::SimulationConfig::ShardTransport::kProcess;
    job.options.shard_authority = true;
    job.options.backplane_fault = spec.fault;
    job.label = std::string("chaos_sweep ") + spec.name +
                (spec.fault[0] != '\0' ? std::string(" ") + spec.fault : "");
    jobs.push_back(std::move(job));
  }
  // Strictly serial: every cell spawns its own daemon processes and a
  // parallel sweep would let them contend for cores.
  std::vector<SweepCellResult> cells = RunSweepObserved(jobs, 1, obs);

  std::vector<double> xs;
  std::vector<Series> recovery = {
      {"agreement", {}},   {"uplinks dropped", {}}, {"failovers", {}},
      {"cutovers", {}},    {"chaos frames", {}},    {"chaos kills", {}},
  };
  std::vector<Series> serving = {
      {"scans remote", {}}, {"scans local", {}}, {"restarts", {}},
      {"results match", {}},
  };
  bool all_ok = true;
  for (size_t k = 0; k < cells.size(); ++k) {
    const sim::RunMetrics& m = cells[k].metrics;
    xs.push_back(static_cast<double>(k));
    Progress(std::string("cell ") + std::to_string(k) + " = " +
             kSpecs[k].name);
    recovery[0].values.push_back(m.AverageAgreement());
    recovery[1].values.push_back(static_cast<double>(m.uplinks_dropped));
    recovery[2].values.push_back(
        static_cast<double>(m.backplane_failovers));
    recovery[3].values.push_back(
        static_cast<double>(m.backplane_cutovers));
    recovery[4].values.push_back(
        static_cast<double>(m.backplane_chaos_frames));
    recovery[5].values.push_back(
        static_cast<double>(m.backplane_chaos_kills));
    serving[0].values.push_back(
        static_cast<double>(m.backplane_scans_remote));
    serving[1].values.push_back(
        static_cast<double>(m.backplane_scans_local));
    serving[2].values.push_back(static_cast<double>(m.shard_restarts));
    // Reconvergence contract: byte-identical result sets to the in-process
    // baseline, agreement at the floor, zero uplinks lost to the chaos.
    const bool match =
        cells[k].query_results == base_cells[0].query_results;
    serving[3].values.push_back(match ? 1.0 : 0.0);
    const bool ok = match && m.AverageAgreement() >= min_agreement &&
                    m.uplinks_dropped == 0;
    if (!ok) {
      all_ok = false;
      std::fprintf(stderr,
                   "[chaos_sweep] VIOLATION %s: match=%d agreement=%.4f "
                   "uplinks_dropped=%llu\n",
                   jobs[k].label.c_str(), match ? 1 : 0,
                   m.AverageAgreement(),
                   static_cast<unsigned long long>(m.uplinks_dropped));
    }
  }
  PrintTable("Chaos sweep: recovery (authority mode)", "cell", xs, recovery);
  PrintTable("Chaos sweep: scan serving", "cell", xs, serving);

  int status = FinishBench();
  if (require_reconverge && !all_ok) {
    std::fprintf(stderr,
                 "[chaos_sweep] FAIL: a chaos cell did not reconverge\n");
    return 1;
  }
  return status;
}
