// Figure 8: effect of the base station coverage area on messaging cost.
// Messages per second for MobiEyes EQP as a function of the base station
// side length; the paper finds cost falling until a monitoring region fits
// inside a single station's coverage, after which the effect disappears.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("fig08_messaging_basestation", argc, argv);
  std::vector<double> station_sides = {5, 10, 20, 40, 80};
  std::vector<double> query_counts = {100, 400, 1000};
  std::vector<Series> series;
  for (double nmq : query_counts) {
    series.push_back({"nmq=" + std::to_string(static_cast<int>(nmq)), {}});
  }
  RunOptions options;
  options.steps = 8;

  std::vector<SweepJob> jobs;
  for (double alen : station_sides) {
    for (double nmq : query_counts) {
      SweepJob job;
      job.params.base_station_side = alen;
      job.params.num_queries = static_cast<int>(nmq);
      job.options = options;
      job.label = "fig08 alen=" + std::to_string(alen) +
                  " nmq=" + std::to_string(job.params.num_queries);
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < station_sides.size(); ++row) {
    for (size_t k = 0; k < query_counts.size(); ++k) {
      series[k].values.push_back(results[cell++].MessagesPerSecond());
    }
  }
  PrintTable("Fig 8: messages/second vs base station side length (EQP)",
             "alen", station_sides, series);
  return FinishBench();
}
