// Figure 8: effect of the base station coverage area on messaging cost.
// Messages per second for MobiEyes EQP as a function of the base station
// side length; the paper finds cost falling until a monitoring region fits
// inside a single station's coverage, after which the effect disappears.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> station_sides = {5, 10, 20, 40, 80};
  std::vector<double> query_counts = {100, 400, 1000};
  std::vector<Series> series;
  for (double nmq : query_counts) {
    series.push_back({"nmq=" + std::to_string(static_cast<int>(nmq)), {}});
  }
  RunOptions options;
  options.steps = 8;

  for (double alen : station_sides) {
    for (size_t k = 0; k < query_counts.size(); ++k) {
      sim::SimulationParams params;
      params.base_station_side = alen;
      params.num_queries = static_cast<int>(query_counts[k]);
      Progress("fig08 alen=" + std::to_string(alen) +
               " nmq=" + std::to_string(params.num_queries));
      series[k].values.push_back(
          RunMode(params, sim::SimMode::kMobiEyesEager, options)
              .MessagesPerSecond());
    }
  }
  PrintTable("Fig 8: messages/second vs base station side length (EQP)",
             "alen", station_sides, series);
  return 0;
}
