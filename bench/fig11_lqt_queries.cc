// Figure 11: effect of the total number of queries on the average LQT size
// (linear growth, per the paper).

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("fig11_lqt_queries", argc, argv);
  std::vector<double> query_counts = {100, 250, 500, 750, 1000};
  std::vector<double> alphas = {2.0, 5.0, 10.0};
  std::vector<Series> series;
  for (double alpha : alphas) {
    series.push_back({"alpha=" + std::to_string(static_cast<int>(alpha)), {}});
  }
  RunOptions options;
  options.steps = 8;

  std::vector<SweepJob> jobs;
  for (double nmq : query_counts) {
    for (double alpha : alphas) {
      SweepJob job;
      job.params.num_queries = static_cast<int>(nmq);
      job.params.alpha = alpha;
      job.options = options;
      job.label = "fig11 nmq=" + std::to_string(job.params.num_queries) +
                  " alpha=" + std::to_string(alpha);
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < query_counts.size(); ++row) {
    for (size_t k = 0; k < alphas.size(); ++k) {
      series[k].values.push_back(results[cell++].AverageLqtSize());
    }
  }
  PrintTable("Fig 11: average LQT size vs number of queries", "num_queries",
             query_counts, series);
  return FinishBench();
}
