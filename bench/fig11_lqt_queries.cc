// Figure 11: effect of the total number of queries on the average LQT size
// (linear growth, per the paper).

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> query_counts = {100, 250, 500, 750, 1000};
  std::vector<double> alphas = {2.0, 5.0, 10.0};
  std::vector<Series> series;
  for (double alpha : alphas) {
    series.push_back({"alpha=" + std::to_string(static_cast<int>(alpha)), {}});
  }
  RunOptions options;
  options.steps = 8;

  for (double nmq : query_counts) {
    for (size_t k = 0; k < alphas.size(); ++k) {
      sim::SimulationParams params;
      params.num_queries = static_cast<int>(nmq);
      params.alpha = alphas[k];
      Progress("fig11 nmq=" + std::to_string(params.num_queries) +
               " alpha=" + std::to_string(params.alpha));
      series[k].values.push_back(
          RunMode(params, sim::SimMode::kMobiEyesEager, options)
              .AverageLqtSize());
    }
  }
  PrintTable("Fig 11: average LQT size vs number of queries", "num_queries",
             query_counts, series);
  return 0;
}
