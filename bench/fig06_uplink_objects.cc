// Figure 6: uplink component of the messaging cost (log scale in the
// paper). Uplink messages per second vs the number of objects; LQP cuts the
// uplink requirement drastically, which matters in asymmetric networks.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("fig06_uplink_objects", argc, argv);
  std::vector<double> object_counts = {1000, 2500, 5000, 7500, 10000};
  std::vector<sim::SimMode> modes = {
      sim::SimMode::kNaive, sim::SimMode::kCentralOptimal,
      sim::SimMode::kMobiEyesEager, sim::SimMode::kMobiEyesLazy};
  std::vector<Series> series = {{"Naive", {}},
                                {"CentralOpt", {}},
                                {"MobiEyes-EQP", {}},
                                {"MobiEyes-LQP", {}}};
  RunOptions options;
  options.steps = 8;

  std::vector<SweepJob> jobs;
  for (double no : object_counts) {
    for (sim::SimMode mode : modes) {
      SweepJob job;
      job.params.num_objects = static_cast<int>(no);
      job.params.velocity_changes_per_step = static_cast<int>(no * 0.1);
      job.mode = mode;
      job.options = options;
      job.label = "fig06 no=" + std::to_string(job.params.num_objects) + " " +
                  sim::SimModeName(mode);
      jobs.push_back(job);
    }
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);
  size_t cell = 0;
  for (size_t row = 0; row < object_counts.size(); ++row) {
    for (size_t s = 0; s < series.size(); ++s) {
      series[s].values.push_back(results[cell++].UplinkMessagesPerSecond());
    }
  }
  PrintTable("Fig 6: uplink messages/second vs number of objects",
             "num_objects", object_counts, series);
  return FinishBench();
}
