// Figure 6: uplink component of the messaging cost (log scale in the
// paper). Uplink messages per second vs the number of objects; LQP cuts the
// uplink requirement drastically, which matters in asymmetric networks.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> object_counts = {1000, 2500, 5000, 7500, 10000};
  std::vector<Series> series = {{"Naive", {}},
                                {"CentralOpt", {}},
                                {"MobiEyes-EQP", {}},
                                {"MobiEyes-LQP", {}}};
  RunOptions options;
  options.steps = 8;

  for (double no : object_counts) {
    sim::SimulationParams params;
    params.num_objects = static_cast<int>(no);
    params.velocity_changes_per_step = static_cast<int>(no * 0.1);
    Progress("fig06 no=" + std::to_string(params.num_objects));
    series[0].values.push_back(RunMode(params, sim::SimMode::kNaive, options)
                                   .UplinkMessagesPerSecond());
    series[1].values.push_back(
        RunMode(params, sim::SimMode::kCentralOptimal, options)
            .UplinkMessagesPerSecond());
    series[2].values.push_back(
        RunMode(params, sim::SimMode::kMobiEyesEager, options)
            .UplinkMessagesPerSecond());
    series[3].values.push_back(
        RunMode(params, sim::SimMode::kMobiEyesLazy, options)
            .UplinkMessagesPerSecond());
  }
  PrintTable("Fig 6: uplink messages/second vs number of objects",
             "num_objects", object_counts, series);
  return 0;
}
