// Ablation: the analytic alpha-cost model (sim/alpha_model.h) against the
// simulated messaging cost of Fig. 4. The model is meant to predict the
// U-shape and the location of the minimum, not absolute counts.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mobieyes/sim/alpha_model.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  InitBench("ablation_alpha_model", argc, argv);
  std::vector<double> alphas = {0.5, 1, 2, 4, 6, 8, 12, 16};
  std::vector<Series> series = {{"simulated msgs/s", {}},
                                {"model msgs/s", {}},
                                {"model uplink", {}},
                                {"model downlink", {}}};
  RunOptions options;
  options.steps = 8;

  std::vector<SweepJob> jobs;
  for (double alpha : alphas) {
    SweepJob job;
    job.params.alpha = alpha;
    job.options = options;
    job.label = "ablation_alpha alpha=" + std::to_string(alpha);
    jobs.push_back(job);
  }
  std::vector<sim::RunMetrics> results = RunSweep(jobs);

  sim::SimulationParams defaults;
  sim::AlphaCostModel model(defaults);
  for (size_t row = 0; row < alphas.size(); ++row) {
    double alpha = alphas[row];
    series[0].values.push_back(results[row].MessagesPerSecond());
    series[1].values.push_back(model.MessagesPerSecond(alpha));
    series[2].values.push_back(model.UplinkPerSecond(alpha));
    series[3].values.push_back(model.DownlinkPerSecond(alpha));
  }
  PrintTable("Ablation: analytic alpha model vs simulation (EQP)", "alpha",
             alphas, series);
  std::printf("model-optimal alpha: %.3f (paper sweet spot: [4, 6])\n",
              model.OptimalAlpha());
  return FinishBench();
}
