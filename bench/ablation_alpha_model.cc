// Ablation: the analytic alpha-cost model (sim/alpha_model.h) against the
// simulated messaging cost of Fig. 4. The model is meant to predict the
// U-shape and the location of the minimum, not absolute counts.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mobieyes/sim/alpha_model.h"

using namespace mobieyes;       // NOLINT(build/namespaces)
using namespace mobieyes::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<double> alphas = {0.5, 1, 2, 4, 6, 8, 12, 16};
  std::vector<Series> series = {{"simulated msgs/s", {}},
                                {"model msgs/s", {}},
                                {"model uplink", {}},
                                {"model downlink", {}}};
  RunOptions options;
  options.steps = 8;

  sim::SimulationParams defaults;
  sim::AlphaCostModel model(defaults);
  for (double alpha : alphas) {
    sim::SimulationParams params;
    params.alpha = alpha;
    Progress("ablation_alpha alpha=" + std::to_string(alpha));
    series[0].values.push_back(
        RunMode(params, sim::SimMode::kMobiEyesEager, options)
            .MessagesPerSecond());
    series[1].values.push_back(model.MessagesPerSecond(alpha));
    series[2].values.push_back(model.UplinkPerSecond(alpha));
    series[3].values.push_back(model.DownlinkPerSecond(alpha));
  }
  PrintTable("Ablation: analytic alpha model vs simulation (EQP)", "alpha",
             alphas, series);
  std::printf("model-optimal alpha: %.3f (paper sweet spot: [4, 6])\n",
              model.OptimalAlpha());
  return 0;
}
